#include "core/failpoint.h"

#include <cstdlib>
#include <map>
#include <string_view>
#include <thread>
#include <utility>

#include "core/sync.h"

namespace ldpm {
namespace failpoint {

namespace {

/// One armed site plus its lifetime accounting.
struct Entry {
  Spec spec;
  int remaining_skip = 0;
  int remaining_count = -1;
  bool armed = false;        // false once count ran out (hits survive)
  uint64_t hits = 0;
};

/// Armed-site count, constant-initialized so the disarmed fast path never
/// touches the registry (or its initialization guard).
std::atomic<int> g_armed_count{0};

struct Registry {
  core::Mutex mu;
  std::map<std::string, Entry> entries LDPM_GUARDED_BY(mu);
};

Registry& GlobalRegistry() {
  static Registry* registry = new Registry();  // never destroyed: sites may
  return *registry;                            // be evaluated during exit
}

/// Recomputes g_armed_count from the registry.
void RefreshArmedCount(const Registry& registry)
    LDPM_REQUIRES(registry.mu) {
  int armed = 0;
  for (const auto& [site, entry] : registry.entries) {
    if (entry.armed) ++armed;
  }
  g_armed_count.store(armed, std::memory_order_relaxed);
}

StatusOr<StatusCode> ParseCodeName(const std::string& name) {
  for (int c = 1; c <= static_cast<int>(StatusCode::kUnavailable); ++c) {
    if (name == StatusCodeToString(static_cast<StatusCode>(c))) {
      return static_cast<StatusCode>(c);
    }
  }
  return Status::InvalidArgument("unknown status code name \"" + name + "\"");
}

/// Parses a non-negative bounded decimal integer (digits only, value
/// <= 1e9). Replaces std::atoi, whose behavior on the hostile inputs a
/// fuzzer finds first — non-digits (silent 0) and out-of-int-range
/// values (undefined behavior) — made the env grammar unsound.
bool ParseBoundedInt(std::string_view text, int* out) {
  if (text.empty() || text.size() > 10) return false;
  int64_t value = 0;
  for (const char ch : text) {
    if (ch < '0' || ch > '9') return false;
    value = value * 10 + (ch - '0');
  }
  if (value > 1000000000) return false;
  *out = static_cast<int>(value);
  return true;
}

/// Parses one `site=MODE[*count][+skip]` entry.
Status ArmOne(const std::string& entry) {
  const size_t eq = entry.find('=');
  if (eq == std::string::npos || eq == 0) {
    return Status::InvalidArgument("failpoint entry \"" + entry +
                                   "\" is not site=mode");
  }
  const std::string site = entry.substr(0, eq);
  std::string mode = entry.substr(eq + 1);
  Spec spec;
  // Trailing decorations first: +skip, then *count — but only past the
  // mode's argument parenthesis, so "delay(5)+2" parses the +2 while a
  // hypothetical "(a+b)" argument stays untouched.
  const size_t close = mode.rfind(')');
  const size_t anchor = close == std::string::npos ? 0 : close;
  const size_t plus = mode.rfind('+');
  if (plus != std::string::npos && plus > anchor) {
    if (!ParseBoundedInt(std::string_view(mode).substr(plus + 1),
                         &spec.skip)) {
      return Status::InvalidArgument("failpoint entry \"" + entry +
                                     "\" has a malformed +skip count");
    }
    mode.resize(plus);
  }
  const size_t star = mode.rfind('*');
  if (star != std::string::npos && star > anchor) {
    if (!ParseBoundedInt(std::string_view(mode).substr(star + 1),
                         &spec.count)) {
      return Status::InvalidArgument("failpoint entry \"" + entry +
                                     "\" has a malformed *fire count");
    }
    mode.resize(star);
  }
  std::string arg;
  const size_t open = mode.find('(');
  if (open != std::string::npos) {
    if (mode.back() != ')') {
      return Status::InvalidArgument("failpoint mode \"" + mode +
                                     "\" has an unclosed argument");
    }
    arg = mode.substr(open + 1, mode.size() - open - 2);
    mode.resize(open);
  }
  if (mode == "error") {
    spec.mode = Mode::kError;
    if (!arg.empty()) {
      auto code = ParseCodeName(arg);
      if (!code.ok()) return code.status();
      spec.code = *code;
    }
  } else if (mode == "delay") {
    spec.mode = Mode::kDelay;
    int delay_ms = 0;  // a bare "delay" (no argument) means 0 ms
    if (!arg.empty() && !ParseBoundedInt(arg, &delay_ms)) {
      return Status::InvalidArgument("failpoint entry \"" + entry +
                                     "\" has a malformed delay argument");
    }
    spec.delay = std::chrono::milliseconds(delay_ms);
  } else if (mode == "abort") {
    spec.mode = Mode::kAbort;
  } else {
    return Status::InvalidArgument("unknown failpoint mode \"" + mode +
                                   "\" (expected error/delay/abort)");
  }
  Arm(site, std::move(spec));
  return Status::OK();
}

/// Arms sites named by the LDPM_FAILPOINTS environment variable once per
/// process, at static-initialization time — so env-armed sites fire even
/// in code that never calls the programmatic API.
struct EnvInit {
  EnvInit() {
    const char* env = std::getenv("LDPM_FAILPOINTS");
    if (env != nullptr && env[0] != '\0') {
      // A malformed env spec is a fatal misconfiguration: silently running
      // a chaos experiment with no faults armed is worse than aborting.
      Status status = ArmFromString(env);
      if (!status.ok()) {
        std::fprintf(stderr, "LDPM_FAILPOINTS: %s\n",
                     status.ToString().c_str());
        std::abort();
      }
    }
  }
};
EnvInit g_env_init;

}  // namespace

bool AnyArmed() {
  return g_armed_count.load(std::memory_order_relaxed) > 0;
}

void Arm(const std::string& site, Spec spec) {
  Registry& registry = GlobalRegistry();
  core::MutexLock lock(registry.mu);
  Entry& entry = registry.entries[site];
  entry.remaining_skip = spec.skip;
  entry.remaining_count = spec.count;
  entry.armed = spec.count != 0;
  entry.spec = std::move(spec);
  RefreshArmedCount(registry);
}

void ArmError(const std::string& site, StatusCode code) {
  Spec spec;
  spec.mode = Mode::kError;
  spec.code = code;
  Arm(site, std::move(spec));
}

void Disarm(const std::string& site) {
  Registry& registry = GlobalRegistry();
  core::MutexLock lock(registry.mu);
  registry.entries.erase(site);
  RefreshArmedCount(registry);
}

void DisarmAll() {
  Registry& registry = GlobalRegistry();
  core::MutexLock lock(registry.mu);
  registry.entries.clear();
  RefreshArmedCount(registry);
}

Status ArmFromString(const std::string& specs) {
  size_t begin = 0;
  while (begin < specs.size()) {
    size_t end = specs.find(';', begin);
    if (end == std::string::npos) end = specs.size();
    if (end > begin) {
      LDPM_RETURN_IF_ERROR(ArmOne(specs.substr(begin, end - begin)));
    }
    begin = end + 1;
  }
  return Status::OK();
}

uint64_t HitCount(const std::string& site) {
  Registry& registry = GlobalRegistry();
  core::MutexLock lock(registry.mu);
  auto it = registry.entries.find(site);
  return it == registry.entries.end() ? 0 : it->second.hits;
}

std::vector<std::string> ArmedSites() {
  Registry& registry = GlobalRegistry();
  core::MutexLock lock(registry.mu);
  std::vector<std::string> sites;
  for (const auto& [site, entry] : registry.entries) {
    if (entry.armed) sites.push_back(site);
  }
  return sites;
}

Status Evaluate(const char* site) {
  Mode mode = Mode::kOff;
  Status injected;
  std::chrono::milliseconds delay{0};
  {
    Registry& registry = GlobalRegistry();
    core::MutexLock lock(registry.mu);
    auto it = registry.entries.find(site);
    if (it == registry.entries.end() || !it->second.armed) {
      return Status::OK();
    }
    Entry& entry = it->second;
    if (entry.remaining_skip > 0) {
      --entry.remaining_skip;
      return Status::OK();
    }
    if (entry.remaining_count > 0 && --entry.remaining_count == 0) {
      entry.armed = false;  // last firing; hits stay queryable
      RefreshArmedCount(registry);
    }
    ++entry.hits;
    mode = entry.spec.mode;
    delay = entry.spec.delay;
    if (mode == Mode::kError) {
      injected = Status(
          entry.spec.code,
          entry.spec.message.empty()
              ? "failpoint " + std::string(site) + " injected error"
              : entry.spec.message);
    }
  }
  // Side effects happen outside the registry lock: a delay must not block
  // concurrent evaluations of other sites.
  switch (mode) {
    case Mode::kOff:
      return Status::OK();
    case Mode::kError:
      return injected;
    case Mode::kDelay:
      std::this_thread::sleep_for(delay);
      return Status::OK();
    case Mode::kAbort:
      std::fprintf(stderr, "failpoint %s: aborting\n", site);
      std::abort();
  }
  return Status::OK();
}

}  // namespace failpoint
}  // namespace ldpm
