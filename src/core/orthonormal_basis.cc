#include "core/orthonormal_basis.h"

#include <cmath>
#include <string>

namespace ldpm {

StatusOr<AttributeBasis> AttributeBasis::Helmert(uint32_t r) {
  if (r < 2) {
    return Status::InvalidArgument(
        "AttributeBasis: cardinality must be >= 2, got " + std::to_string(r));
  }
  if (r > 4096) {
    return Status::InvalidArgument(
        "AttributeBasis: cardinality too large for a dense basis");
  }
  std::vector<double> values(static_cast<size_t>(r) * r, 0.0);
  std::vector<double> max_abs(r, 0.0);

  // e_0 = all ones.
  for (uint32_t x = 0; x < r; ++x) values[x] = 1.0;
  max_abs[0] = 1.0;

  for (uint32_t t = 1; t < r; ++t) {
    const double a = std::sqrt(static_cast<double>(r) /
                               (static_cast<double>(t) * (t + 1.0)));
    for (uint32_t x = 0; x < t; ++x) values[t * r + x] = a;
    values[t * r + t] = -static_cast<double>(t) * a;
    max_abs[t] = static_cast<double>(t) * a;
  }
  return AttributeBasis(r, std::move(values), std::move(max_abs));
}

StatusOr<AttributeBasis> AttributeBasis::Fourier(uint32_t r) {
  if (r < 2) {
    return Status::InvalidArgument(
        "AttributeBasis: cardinality must be >= 2, got " + std::to_string(r));
  }
  if (r > 4096) {
    return Status::InvalidArgument(
        "AttributeBasis: cardinality too large for a dense basis");
  }
  std::vector<double> values(static_cast<size_t>(r) * r, 0.0);
  std::vector<double> max_abs(r, 0.0);

  for (uint32_t x = 0; x < r; ++x) values[x] = 1.0;
  max_abs[0] = 1.0;

  const double sqrt2 = std::sqrt(2.0);
  const double two_pi = 2.0 * 3.14159265358979323846;
  uint32_t t = 1;
  for (uint32_t j = 1; 2 * j < r; ++j) {
    for (uint32_t x = 0; x < r; ++x) {
      const double angle = two_pi * j * x / static_cast<double>(r);
      values[t * r + x] = sqrt2 * std::cos(angle);
      values[(t + 1) * r + x] = sqrt2 * std::sin(angle);
    }
    t += 2;
  }
  if (r % 2 == 0) {
    // The Nyquist character (-1)^x completes the basis for even r.
    for (uint32_t x = 0; x < r; ++x) {
      values[t * r + x] = (x % 2 == 0) ? 1.0 : -1.0;
    }
    t += 1;
  }
  LDPM_CHECK(t == r);

  for (uint32_t row = 1; row < r; ++row) {
    double m = 0.0;
    for (uint32_t x = 0; x < r; ++x) {
      m = std::max(m, std::fabs(values[row * r + x]));
    }
    max_abs[row] = m;
  }
  return AttributeBasis(r, std::move(values), std::move(max_abs));
}

}  // namespace ldpm
