#include "core/crc32c.h"

#include <bit>
#include <cstring>

namespace ldpm {

namespace {

/// Slicing-by-8 lookup tables, built at compile time. t[0] is the classic
/// bytewise table for the reflected polynomial; t[s][b] is the CRC of byte
/// b followed by s zero bytes, which lets eight input bytes be folded with
/// eight independent table loads per iteration.
struct Crc32cTables {
  uint32_t t[8][256];
  constexpr Crc32cTables() : t{} {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1) ? (c >> 1) ^ 0x82F63B78u : c >> 1;
      }
      t[0][i] = c;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = t[0][i];
      for (int s = 1; s < 8; ++s) {
        c = (c >> 8) ^ t[0][c & 0xFFu];
        t[s][i] = c;
      }
    }
  }
};

constexpr Crc32cTables kCrc{};

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t size) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t state = crc ^ 0xFFFFFFFFu;
  // The 64-bit fold reads the input as a little-endian word so that the
  // low state bytes line up with the first input bytes; on big-endian
  // hosts the bytewise tail loop below handles everything.
  if constexpr (std::endian::native == std::endian::little) {
    while (size >= 8) {
      uint64_t word;
      std::memcpy(&word, p, 8);
      word ^= state;
      state = kCrc.t[7][word & 0xFFu] ^ kCrc.t[6][(word >> 8) & 0xFFu] ^
              kCrc.t[5][(word >> 16) & 0xFFu] ^ kCrc.t[4][(word >> 24) & 0xFFu] ^
              kCrc.t[3][(word >> 32) & 0xFFu] ^ kCrc.t[2][(word >> 40) & 0xFFu] ^
              kCrc.t[1][(word >> 48) & 0xFFu] ^ kCrc.t[0][(word >> 56) & 0xFFu];
      p += 8;
      size -= 8;
    }
  }
  while (size-- > 0) {
    state = (state >> 8) ^ kCrc.t[0][(state ^ *p++) & 0xFFu];
  }
  return state ^ 0xFFFFFFFFu;
}

}  // namespace ldpm
