#include "core/encoding.h"

#include <bit>
#include <string>

#include "core/bits.h"

namespace ldpm {
namespace {

int BitsFor(uint32_t cardinality) {
  // ceil(log2 r): width of the binary code for values 0..r-1.
  return std::bit_width(cardinality - 1);
}

}  // namespace

Status ByteCursor::ExpectEnd(const char* what) const {
  if (cursor_ == size_) return Status::OK();
  return Status::InvalidArgument(std::string(context_) + ": " +
                                 std::to_string(size_ - cursor_) +
                                 " trailing bytes after " + what);
}

Status ByteCursor::TruncatedError(size_t at, const char* field) const {
  return Status::InvalidArgument(std::string(context_) + ": truncated " +
                                 field + " at byte " + std::to_string(at));
}

CategoricalDomain::CategoricalDomain(std::vector<uint32_t> cardinalities)
    : cardinalities_(std::move(cardinalities)) {
  bits_.reserve(cardinalities_.size());
  masks_.reserve(cardinalities_.size());
  for (uint32_t r : cardinalities_) {
    const int b = BitsFor(r);
    bits_.push_back(b);
    masks_.push_back(((uint64_t{1} << b) - 1) << total_bits_);
    total_bits_ += b;
  }
}

StatusOr<CategoricalDomain> CategoricalDomain::Create(
    std::vector<uint32_t> cardinalities) {
  if (cardinalities.empty()) {
    return Status::InvalidArgument("CategoricalDomain: no attributes");
  }
  int total = 0;
  for (uint32_t r : cardinalities) {
    if (r < 2) {
      return Status::InvalidArgument(
          "CategoricalDomain: every cardinality must be >= 2");
    }
    total += BitsFor(r);
  }
  if (total > kMaxDimensions) {
    return Status::InvalidArgument(
        "CategoricalDomain: encoded width " + std::to_string(total) +
        " exceeds kMaxDimensions");
  }
  return CategoricalDomain(std::move(cardinalities));
}

StatusOr<uint64_t> CategoricalDomain::Encode(
    const std::vector<uint32_t>& values) const {
  if (values.size() != cardinalities_.size()) {
    return Status::InvalidArgument("Encode: tuple arity mismatch");
  }
  uint64_t packed = 0;
  for (size_t i = 0; i < values.size(); ++i) {
    if (values[i] >= cardinalities_[i]) {
      return Status::OutOfRange("Encode: value out of range for attribute " +
                                std::to_string(i));
    }
    packed |= DepositBits(values[i], masks_[i]);
  }
  return packed;
}

StatusOr<std::vector<uint32_t>> CategoricalDomain::Decode(uint64_t packed) const {
  if (total_bits_ < 64 && packed >= (uint64_t{1} << total_bits_)) {
    return Status::OutOfRange("Decode: row outside encoded domain");
  }
  std::vector<uint32_t> values(cardinalities_.size());
  for (size_t i = 0; i < cardinalities_.size(); ++i) {
    const uint64_t code = ExtractBits(packed, masks_[i]);
    if (code >= cardinalities_[i]) {
      return Status::OutOfRange("Decode: invalid code for attribute " +
                                std::to_string(i));
    }
    values[i] = static_cast<uint32_t>(code);
  }
  return values;
}

StatusOr<uint64_t> CategoricalDomain::SelectorForAttributes(
    const std::vector<int>& attrs) const {
  uint64_t beta = 0;
  for (int a : attrs) {
    if (a < 0 || a >= num_attributes()) {
      return Status::OutOfRange("SelectorForAttributes: attribute id " +
                                std::to_string(a) + " out of range");
    }
    if (beta & masks_[a]) {
      return Status::InvalidArgument(
          "SelectorForAttributes: duplicate attribute " + std::to_string(a));
    }
    beta |= masks_[a];
  }
  return beta;
}

StatusOr<CategoricalMarginal> ToCategoricalMarginal(
    const CategoricalDomain& domain, const std::vector<int>& attrs,
    const MarginalTable& binary_marginal) {
  auto beta = domain.SelectorForAttributes(attrs);
  if (!beta.ok()) return beta.status();
  if (*beta != binary_marginal.beta()) {
    return Status::InvalidArgument(
        "ToCategoricalMarginal: marginal selector does not match attributes");
  }

  CategoricalMarginal out;
  out.attributes = attrs;
  uint64_t cells = 1;
  for (int a : attrs) cells *= domain.cardinality(a);
  out.probabilities.assign(cells, 0.0);

  // Walk every cell of the binary marginal, decode each attribute's code,
  // and accumulate into the mixed-radix categorical cell.
  for (uint64_t idx = 0; idx < binary_marginal.size(); ++idx) {
    const uint64_t gamma = binary_marginal.CompactToCell(idx);
    uint64_t cat_index = 0;
    uint64_t radix = 1;
    bool valid = true;
    for (int a : attrs) {
      const uint64_t code = ExtractBits(gamma, domain.attribute_mask(a));
      if (code >= domain.cardinality(a)) {
        valid = false;
        break;
      }
      cat_index += code * radix;
      radix *= domain.cardinality(a);
    }
    const double p = binary_marginal.at_compact(idx);
    if (valid) {
      out.probabilities[cat_index] += p;
    } else {
      out.invalid_mass += p;
    }
  }
  return out;
}

}  // namespace ldpm
