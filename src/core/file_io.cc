#include "core/file_io.h"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <system_error>

#include "core/failpoint.h"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#define LDPM_HAVE_FSYNC 1
#endif

namespace ldpm {

namespace {

std::string ErrnoMessage() {
  return std::strerror(errno);
}

/// Owns the staged temp file until the rename commits it: every error
/// return between creation and promotion — including failpoint-injected
/// ones — unlinks the temp file, so a failed write never strands orphan
/// `*.tmp.*` files next to the target.
class TempFileGuard {
 public:
  explicit TempFileGuard(std::string path) : path_(std::move(path)) {}
  ~TempFileGuard() {
    if (!committed_) std::remove(path_.c_str());
  }
  void Commit() { committed_ = true; }

 private:
  std::string path_;
  bool committed_ = false;
};

}  // namespace

StatusOr<std::vector<uint8_t>> ReadBinaryFile(const std::string& path) {
  LDPM_FAILPOINT("file_io.read");
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("cannot open " + path + ": " + ErrnoMessage());
  }
  std::vector<uint8_t> bytes;
  uint8_t buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    bytes.insert(bytes.end(), buf, buf + n);
  }
  const bool failed = std::ferror(f) != 0;
  std::fclose(f);
  if (failed) {
    return Status::Internal("read of " + path + " failed: " + ErrnoMessage());
  }
  return bytes;
}

Status WriteBinaryFileAtomic(const std::string& path, const uint8_t* data,
                             size_t size) {
  // Unique temp name per call: concurrent writers to the same target (e.g.
  // an explicit CheckpointTo racing the background checkpointer) each stage
  // their own temp file; whichever renames last wins, and both renames
  // install a complete file.
  static std::atomic<uint64_t> counter{0};
  const std::string tmp =
      path + ".tmp." +
      std::to_string(counter.fetch_add(1, std::memory_order_relaxed));
  LDPM_FAILPOINT("file_io.open");
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::Internal("cannot create " + tmp + ": " + ErrnoMessage());
  }
  // From here every error path — real or failpoint-injected — must unlink
  // the temp file; the guard's destructor is that single cleanup point.
  TempFileGuard guard(tmp);
  bool ok = size == 0 || std::fwrite(data, 1, size, f) == size;
  ok = ok && std::fflush(f) == 0;
  Status injected;
  LDPM_FAILPOINT_STATUS("file_io.write", injected);
#ifdef LDPM_HAVE_FSYNC
  // Flush user-space and kernel buffers before the rename so a crash after
  // the rename cannot leave the new name pointing at unwritten blocks.
  ok = ok && fsync(fileno(f)) == 0;
#endif
  if (injected.ok()) LDPM_FAILPOINT_STATUS("file_io.fsync", injected);
  const std::string write_error = ok ? "" : ErrnoMessage();
  if (std::fclose(f) != 0) ok = false;
  if (!ok) {
    return Status::Internal("write of " + tmp + " failed: " +
                            (write_error.empty() ? ErrnoMessage()
                                                 : write_error));
  }
  if (!injected.ok()) {
    return Status(injected.code(),
                  "write of " + tmp + " failed: " + injected.message());
  }
  LDPM_FAILPOINT("file_io.rename");
  // std::filesystem::rename has POSIX semantics everywhere: an existing
  // destination is replaced atomically (plain std::rename would fail on
  // an existing target on Windows).
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    return Status::Internal("rename " + tmp + " -> " + path + " failed: " +
                            ec.message());
  }
  guard.Commit();
#ifdef LDPM_HAVE_FSYNC
  // Persist the directory entry as well: the rename itself lives in the
  // parent directory, and without this a power failure after we return OK
  // could roll the rename back. Open failure is tolerated (not every
  // filesystem permits reading a directory); a failed fsync on an opened
  // directory is a real durability error and is reported.
  const std::string dir =
      std::filesystem::path(path).parent_path().string();
  const int dir_fd =
      open(dir.empty() ? "." : dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd >= 0) {
    const bool synced = fsync(dir_fd) == 0;
    close(dir_fd);
    if (!synced) {
      return Status::Internal("fsync of directory " +
                              (dir.empty() ? std::string(".") : dir) +
                              " failed: " + ErrnoMessage());
    }
  }
#endif
  return Status::OK();
}

}  // namespace ldpm
