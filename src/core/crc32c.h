// CRC-32C (Castagnoli) checksums for on-disk integrity.
//
// The checkpoint file format (engine/checkpoint.h) guards every header and
// record payload with a CRC so that torn writes, truncation, and bit rot
// are detected on load instead of silently biasing restored estimates —
// under LDP every absorbed report is noisy and irreplaceable, so corrupted
// state must be rejected, never repaired by guesswork.
//
// CRC-32C (polynomial 0x1EDC6F41, reflected 0x82F63B78) is the variant
// with the best error-detection properties for storage payloads and the
// one with broad hardware support (SSE4.2 crc32, ARMv8 CRC extensions);
// this implementation is portable software slicing-by-8 with compile-time
// generated tables, fast enough to checksum checkpoints at memory speed
// relative to the disk write they protect.

#ifndef LDPM_CORE_CRC32C_H_
#define LDPM_CORE_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace ldpm {

/// Extends a finished CRC-32C value over more bytes, so that
/// `Crc32cExtend(Crc32c(a, n), b, m)` equals the CRC of the concatenation
/// a||b. Pass 0 as `crc` to start a fresh checksum (the conventional
/// init/final XOR is handled internally).
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t size);

/// CRC-32C of a byte buffer. Crc32c("123456789", 9) == 0xE3069283.
inline uint32_t Crc32c(const void* data, size_t size) {
  return Crc32cExtend(0, data, size);
}

}  // namespace ldpm

#endif  // LDPM_CORE_CRC32C_H_
