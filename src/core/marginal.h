// The marginal operator C_beta and helpers for enumerating marginal
// selectors (Definition 3.2 / 3.3 of the paper).

#ifndef LDPM_CORE_MARGINAL_H_
#define LDPM_CORE_MARGINAL_H_

#include <cstdint>
#include <vector>

#include "core/contingency_table.h"
#include "core/status.h"

namespace ldpm {

/// Computes the marginal C_beta(t) of a full table by summing out every
/// attribute not selected by beta (equation (3) of the paper). O(2^d).
StatusOr<MarginalTable> ComputeMarginal(const ContingencyTable& t,
                                        uint64_t beta);

/// Marginalizes an existing marginal table further: given C_beta and a
/// selector sub ⪯ beta, returns C_sub. O(2^|beta|).
StatusOr<MarginalTable> MarginalizeTable(const MarginalTable& super,
                                         uint64_t sub);

/// All C(d, k) selectors of exactly-k-way marginals, ascending.
std::vector<uint64_t> KWaySelectors(int d, int k);

/// All selectors of the "full set of k-way marginals": every beta with
/// 1 <= |beta| <= k, grouped by order.
std::vector<uint64_t> FullKWaySelectors(int d, int k);

/// Computes the exact marginal of a list of packed user rows (each row a
/// point of {0,1}^d) without materializing the 2^d table: O(N) time,
/// O(2^k) space.
StatusOr<MarginalTable> MarginalFromRows(const std::vector<uint64_t>& rows,
                                         int d, uint64_t beta);

}  // namespace ldpm

#endif  // LDPM_CORE_MARGINAL_H_
