#include "core/contingency_table.h"

#include <bit>
#include <cmath>
#include <numeric>
#include <sstream>

namespace ldpm {

StatusOr<ContingencyTable> ContingencyTable::Zero(int d) {
  if (d < 0 || d > kMaxDenseDimensions) {
    return Status::InvalidArgument(
        "ContingencyTable: d must be in [0, " +
        std::to_string(kMaxDenseDimensions) + "], got " + std::to_string(d));
  }
  return ContingencyTable(d, std::vector<double>(uint64_t{1} << d, 0.0));
}

StatusOr<ContingencyTable> ContingencyTable::FromCells(std::vector<double> cells) {
  if (cells.empty() || !std::has_single_bit(cells.size())) {
    return Status::InvalidArgument(
        "ContingencyTable: cell count must be a power of two, got " +
        std::to_string(cells.size()));
  }
  const int d = std::countr_zero(cells.size());
  if (d > kMaxDenseDimensions) {
    return Status::InvalidArgument("ContingencyTable: table too large, d = " +
                                   std::to_string(d));
  }
  return ContingencyTable(d, std::move(cells));
}

double ContingencyTable::Total() const {
  return std::accumulate(cells_.begin(), cells_.end(), 0.0);
}

Status ContingencyTable::Normalize() {
  const double total = Total();
  if (!(total > 0.0) || !std::isfinite(total)) {
    return Status::FailedPrecondition(
        "ContingencyTable::Normalize: total is zero or non-finite");
  }
  for (double& c : cells_) c /= total;
  return Status::OK();
}

MarginalTable::MarginalTable(int d, uint64_t beta)
    : d_(d), beta_(beta), k_(Popcount(beta)) {
  LDPM_CHECK(d >= 0 && d <= kMaxDimensions);
  LDPM_CHECK(beta < (uint64_t{1} << d) || d == 0);
  values_.assign(uint64_t{1} << k_, 0.0);
}

MarginalTable MarginalTable::Uniform(int d, uint64_t beta) {
  MarginalTable m(d, beta);
  const double u = 1.0 / static_cast<double>(m.size());
  for (double& v : m.values_) v = u;
  return m;
}

double MarginalTable::Total() const {
  return std::accumulate(values_.begin(), values_.end(), 0.0);
}

Status MarginalTable::Normalize() {
  const double total = Total();
  if (!(total > 0.0) || !std::isfinite(total)) {
    return Status::FailedPrecondition(
        "MarginalTable::Normalize: total is zero or non-finite");
  }
  for (double& v : values_) v /= total;
  return Status::OK();
}

void MarginalTable::ProjectToSimplex() {
  double total = 0.0;
  for (double& v : values_) {
    if (v < 0.0) v = 0.0;
    total += v;
  }
  if (total <= 0.0) {
    const double u = 1.0 / static_cast<double>(values_.size());
    for (double& v : values_) v = u;
    return;
  }
  for (double& v : values_) v /= total;
}

double MarginalTable::TotalVariationDistance(const MarginalTable& other) const {
  LDPM_CHECK(beta_ == other.beta_);
  double l1 = 0.0;
  for (uint64_t i = 0; i < values_.size(); ++i) {
    l1 += std::fabs(values_[i] - other.values_[i]);
  }
  return 0.5 * l1;
}

std::string MarginalTable::ToString() const {
  std::ostringstream out;
  out << "marginal beta=0x" << std::hex << beta_ << std::dec << " (k=" << k_
      << ")\n";
  for (uint64_t idx = 0; idx < values_.size(); ++idx) {
    // Print the compact cell as a k-bit pattern, most significant first.
    out << "  [";
    for (int b = k_ - 1; b >= 0; --b) out << ((idx >> b) & 1);
    out << "] " << values_[idx] << "\n";
  }
  return out.str();
}

}  // namespace ldpm
