// Status / StatusOr error model for ldpm.
//
// The public API of ldpm reports recoverable errors through Status values
// rather than exceptions (following the RocksDB / Arrow idiom for database
// libraries). Internal invariant violations use the LDPM_CHECK macros and
// abort, since they indicate programmer error rather than bad input.

#ifndef LDPM_CORE_STATUS_H_
#define LDPM_CORE_STATUS_H_

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace ldpm {

/// Error categories used across the library.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,   ///< Caller passed a malformed or out-of-range value.
  kOutOfRange = 2,        ///< Index or domain bound exceeded.
  kFailedPrecondition = 3,///< Object not in the required state for the call.
  kUnimplemented = 4,     ///< Feature intentionally not provided.
  kInternal = 5,          ///< Invariant violation surfaced as a soft error.
  kNotFound = 6,          ///< Lookup key absent.
  kAlreadyExists = 7,     ///< Key registration collided with a live entry.
  kResourceExhausted = 8, ///< A configured capacity budget is used up.
  kDeadlineExceeded = 9,  ///< A configured time bound elapsed before completion.
  kUnavailable = 10,      ///< Transient transport/peer failure; retry may succeed.
};

/// Human-readable name of a StatusCode (e.g. "InvalidArgument").
std::string_view StatusCodeToString(StatusCode code);

/// A cheap value type describing the outcome of an operation.
///
/// A default-constructed Status is OK. Error statuses carry a code and a
/// message. Statuses are ordered-comparable only on OK-ness.
// Class-level [[nodiscard]]: every function returning a Status (or a
// StatusOr below) is implicitly must-check; intentional drops are spelled
// (void)Foo() at the call site.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Named constructors, one per category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  /// True iff this status represents success.
  bool ok() const { return code_ == StatusCode::kOk; }

  /// The status code.
  StatusCode code() const { return code_; }

  /// The error message ("" for OK statuses).
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Mirrors absl::StatusOr in
/// miniature: check ok() before dereferencing.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  /// Constructs from a value (implicit, so functions can `return value;`).
  StatusOr(T value) : status_(), value_(std::move(value)) {}  // NOLINT

  /// Constructs from an error status. Must not be OK.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      status_ = Status::Internal("StatusOr constructed from OK status");
    }
  }

  /// True iff a value is held.
  bool ok() const { return status_.ok(); }

  /// The status (OK when a value is held).
  const Status& status() const { return status_; }

  /// Access to the held value; must only be called when ok().
  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  T&& operator*() && { return *std::move(value_); }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

 private:
  Status status_;
  std::optional<T> value_;
};

namespace internal {
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr);
}  // namespace internal

/// Aborts with a diagnostic if `expr` is false. Enabled in all build types;
/// use for cheap invariants on internal interfaces.
#define LDPM_CHECK(expr)                                       \
  do {                                                         \
    if (!(expr)) {                                             \
      ::ldpm::internal::CheckFailed(__FILE__, __LINE__, #expr); \
    }                                                          \
  } while (0)

#ifndef NDEBUG
#define LDPM_DCHECK(expr) LDPM_CHECK(expr)
#else
#define LDPM_DCHECK(expr) \
  do {                    \
  } while (0)
#endif

/// Propagates a non-OK status out of the enclosing function.
#define LDPM_RETURN_IF_ERROR(expr)          \
  do {                                      \
    ::ldpm::Status _ldpm_st = (expr);       \
    if (!_ldpm_st.ok()) return _ldpm_st;    \
  } while (0)

}  // namespace ldpm

#endif  // LDPM_CORE_STATUS_H_
