// Dense contingency tables (histograms) over the Boolean hypercube {0,1}^d
// and marginal tables over a selected subset of attributes.
//
// A ContingencyTable stores one double per cell of the full d-attribute
// domain (2^d cells) and is the "t" vector of the paper. A MarginalTable is
// the projection C_beta(t): 2^k values for the k attributes selected by the
// mask beta, stored compactly (cell gamma ⪯ beta lives at index
// ExtractBits(gamma, beta)).

#ifndef LDPM_CORE_CONTINGENCY_TABLE_H_
#define LDPM_CORE_CONTINGENCY_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/bits.h"
#include "core/status.h"

namespace ldpm {

/// Largest d for which ldpm will materialize a dense 2^d table (1 GiB of
/// doubles at d = 27; we stop well before).
inline constexpr int kMaxDenseDimensions = 26;

/// A dense real-valued table over {0,1}^d. Cell indices are packed attribute
/// vectors (attribute 0 = bit 0).
class ContingencyTable {
 public:
  /// Creates an all-zero table over d attributes. Fails for d outside
  /// [0, kMaxDenseDimensions].
  static StatusOr<ContingencyTable> Zero(int d);

  /// Creates a table from explicit cell values; the size of `cells` must be
  /// a power of two 2^d with d <= kMaxDenseDimensions.
  static StatusOr<ContingencyTable> FromCells(std::vector<double> cells);

  /// Number of binary attributes d.
  int dimensions() const { return d_; }

  /// Number of cells, 2^d.
  uint64_t size() const { return cells_.size(); }

  /// Cell accessors. Indices are checked in debug builds only.
  double operator[](uint64_t cell) const {
    LDPM_DCHECK(cell < cells_.size());
    return cells_[cell];
  }
  double& operator[](uint64_t cell) {
    LDPM_DCHECK(cell < cells_.size());
    return cells_[cell];
  }

  /// Adds `weight` to a cell.
  void Add(uint64_t cell, double weight) {
    LDPM_DCHECK(cell < cells_.size());
    cells_[cell] += weight;
  }

  /// Sum of all cells.
  double Total() const;

  /// Scales every cell by 1/Total() so the table is a distribution.
  /// Fails if the total is zero or non-finite.
  Status Normalize();

  /// Mutable access to the raw cell storage (for transform routines).
  std::vector<double>& cells() { return cells_; }
  const std::vector<double>& cells() const { return cells_; }

 private:
  ContingencyTable(int d, std::vector<double> cells)
      : d_(d), cells_(std::move(cells)) {}

  int d_ = 0;
  std::vector<double> cells_;
};

/// The projection of a distribution onto the attributes selected by `beta`.
/// Always holds 2^k values where k = popcount(beta).
class MarginalTable {
 public:
  /// An all-zero marginal for selector beta over a d-attribute domain.
  MarginalTable(int d, uint64_t beta);

  /// The uniform marginal (every cell 2^-k) for selector beta.
  static MarginalTable Uniform(int d, uint64_t beta);

  /// Domain dimensionality d this marginal was taken from.
  int dimensions() const { return d_; }

  /// The attribute-selector mask.
  uint64_t beta() const { return beta_; }

  /// The order k = |beta| of the marginal.
  int order() const { return k_; }

  /// Number of cells, 2^k.
  uint64_t size() const { return values_.size(); }

  /// Access by compact cell index in [0, 2^k).
  double at_compact(uint64_t idx) const {
    LDPM_DCHECK(idx < values_.size());
    return values_[idx];
  }
  double& at_compact(uint64_t idx) {
    LDPM_DCHECK(idx < values_.size());
    return values_[idx];
  }

  /// Access by full-width cell index gamma ⪯ beta (bits outside beta are
  /// ignored, matching the paper's indexing convention).
  double at(uint64_t gamma) const { return values_[ExtractBits(gamma, beta_)]; }
  double& at(uint64_t gamma) { return values_[ExtractBits(gamma, beta_)]; }

  /// Expands a compact index back to the full-width cell gamma ⪯ beta.
  uint64_t CompactToCell(uint64_t idx) const { return DepositBits(idx, beta_); }

  /// Sum of all cells.
  double Total() const;

  /// Scales cells to sum to one. Fails on zero/non-finite total.
  Status Normalize();

  /// Projects the table onto the probability simplex: clamps negatives to
  /// zero then renormalizes (a standard consistency post-process for noisy
  /// marginals). Falls back to the uniform marginal when everything clamps
  /// to zero.
  void ProjectToSimplex();

  /// Total variation distance to another marginal over the same beta:
  /// (1/2) * L1 distance. Check-fails if selectors differ.
  double TotalVariationDistance(const MarginalTable& other) const;

  /// Renders the marginal as an aligned text table (for examples/benches).
  std::string ToString() const;

  std::vector<double>& values() { return values_; }
  const std::vector<double>& values() const { return values_; }

 private:
  int d_;
  uint64_t beta_;
  int k_;
  std::vector<double> values_;
};

}  // namespace ldpm

#endif  // LDPM_CORE_CONTINGENCY_TABLE_H_
