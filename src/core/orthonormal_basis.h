// Orthonormal function bases over a single categorical attribute — the
// per-coordinate building block of the Efron-Stein decomposition the paper
// conjectures about in Section 6.3.
//
// For an attribute with r values, AttributeBasis holds r vectors
// e_0, ..., e_{r-1} of R^r that are orthonormal under the *uniform* inner
// product <u, v> = (1/r) sum_x u(x) v(x), with e_0 identically 1. The
// tensor products of such bases across attributes give the Efron-Stein
// decomposition of the product domain: the coefficients supported on a set
// S of attributes capture exactly the |S|-way interactions, so (like the
// binary Hadamard case, Lemma 3.7) a k-way marginal needs only the
// coefficients whose support has size at most k.
//
// The concrete basis is the normalized Helmert contrast system:
//   e_t(x) = a_t        for x < t,
//   e_t(t) = -t * a_t,
//   e_t(x) = 0          for x > t,      a_t = sqrt(r / (t (t+1))).
// For r = 2 this is exactly the Hadamard character chi(x) = (-1)^x.

#ifndef LDPM_CORE_ORTHONORMAL_BASIS_H_
#define LDPM_CORE_ORTHONORMAL_BASIS_H_

#include <cstdint>
#include <vector>

#include "core/status.h"

namespace ldpm {

class AttributeBasis {
 public:
  /// Builds the normalized Helmert basis for an attribute of cardinality
  /// r >= 2.
  static StatusOr<AttributeBasis> Helmert(uint32_t r);

  /// Builds the real trigonometric (discrete Fourier) orthonormal basis:
  /// e_0 = 1, then sqrt(2) cos(2 pi j x / r) and sqrt(2) sin(2 pi j x / r)
  /// pairs (plus (-1)^x when r is even). Unlike Helmert, every entry is
  /// bounded by sqrt(2) *independent of r*, which keeps the bounded-value
  /// LDP release tight for large-cardinality attributes.
  static StatusOr<AttributeBasis> Fourier(uint32_t r);

  /// Attribute cardinality r.
  uint32_t cardinality() const { return r_; }

  /// e_t(x); t and x both in [0, r).
  double Value(uint32_t t, uint32_t x) const {
    LDPM_DCHECK(t < r_ && x < r_);
    return values_[t * r_ + x];
  }

  /// max_x |e_t(x)| — the bound used by the bounded-value LDP release.
  double MaxAbs(uint32_t t) const {
    LDPM_DCHECK(t < r_);
    return max_abs_[t];
  }

 private:
  AttributeBasis(uint32_t r, std::vector<double> values,
                 std::vector<double> max_abs)
      : r_(r), values_(std::move(values)), max_abs_(std::move(max_abs)) {}

  uint32_t r_;
  std::vector<double> values_;  // row-major r x r
  std::vector<double> max_abs_;
};

}  // namespace ldpm

#endif  // LDPM_CORE_ORTHONORMAL_BASIS_H_
