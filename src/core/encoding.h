// Categorical-attribute support (Section 6.3 of the paper).
//
// A CategoricalDomain describes d attributes with cardinalities r_1..r_d.
// Each attribute is binary-encoded into ceil(log2 r_i) bits, giving an
// effective binary dimension d2 = sum_i ceil(log2 r_i). All the binary
// protocols then run unchanged over the encoded domain (Corollary 6.1), and
// this header converts the reconstructed binary marginals back into
// categorical marginal tables.

#ifndef LDPM_CORE_ENCODING_H_
#define LDPM_CORE_ENCODING_H_

#include <cstdint>
#include <vector>

#include "core/contingency_table.h"
#include "core/status.h"

namespace ldpm {

/// Describes a mixed categorical domain and its packed binary encoding.
class CategoricalDomain {
 public:
  /// Creates a domain from per-attribute cardinalities. Every cardinality
  /// must be >= 2 and the total encoded width must fit kMaxDimensions.
  static StatusOr<CategoricalDomain> Create(std::vector<uint32_t> cardinalities);

  /// Number of categorical attributes d.
  int num_attributes() const { return static_cast<int>(cardinalities_.size()); }

  /// Cardinality r_i of attribute i.
  uint32_t cardinality(int i) const { return cardinalities_[i]; }

  /// Encoded width of attribute i: ceil(log2 r_i).
  int attribute_bits(int i) const { return bits_[i]; }

  /// Total binary dimension d2 = sum_i ceil(log2 r_i).
  int binary_dimension() const { return total_bits_; }

  /// Mask (within the packed encoding) of the bits carrying attribute i.
  uint64_t attribute_mask(int i) const { return masks_[i]; }

  /// Packs one categorical tuple into its binary encoding. Fails if the
  /// tuple length or any value is out of range.
  StatusOr<uint64_t> Encode(const std::vector<uint32_t>& values) const;

  /// Unpacks a binary-encoded row back to categorical values. Fails if any
  /// attribute's bit pattern exceeds its cardinality (an *invalid code*,
  /// possible only for non-power-of-two cardinalities).
  StatusOr<std::vector<uint32_t>> Decode(uint64_t packed) const;

  /// The binary marginal selector covering all encoded bits of the given
  /// attributes (duplicates rejected). Its order is the k2 of Corollary 6.1.
  StatusOr<uint64_t> SelectorForAttributes(const std::vector<int>& attrs) const;

 private:
  explicit CategoricalDomain(std::vector<uint32_t> cardinalities);

  std::vector<uint32_t> cardinalities_;
  std::vector<int> bits_;
  std::vector<uint64_t> masks_;
  int total_bits_ = 0;
};

/// A categorical marginal recovered from a binary-encoded estimate.
struct CategoricalMarginal {
  /// Attribute ids, in the caller's order.
  std::vector<int> attributes;
  /// Probabilities indexed mixed-radix: attributes[0] is the fastest-varying
  /// digit. Size = product of the attributes' cardinalities.
  std::vector<double> probabilities;
  /// Estimated probability mass that landed on invalid bit patterns (codes
  /// >= r_i). Zero for exact inputs; noise can place mass there.
  double invalid_mass = 0.0;
};

/// Folds a binary marginal over SelectorForAttributes(attrs) back into a
/// categorical marginal. Mass on invalid codes is reported, not
/// redistributed.
StatusOr<CategoricalMarginal> ToCategoricalMarginal(
    const CategoricalDomain& domain, const std::vector<int>& attrs,
    const MarginalTable& binary_marginal);

}  // namespace ldpm

#endif  // LDPM_CORE_ENCODING_H_
