// Categorical-attribute support (Section 6.3 of the paper) and the
// overflow-checked byte-decoding primitives shared by every parser that
// consumes bytes from outside the process.
//
// A CategoricalDomain describes d attributes with cardinalities r_1..r_d.
// Each attribute is binary-encoded into ceil(log2 r_i) bits, giving an
// effective binary dimension d2 = sum_i ceil(log2 r_i). All the binary
// protocols then run unchanged over the encoded domain (Corollary 6.1), and
// this header converts the reconstructed binary marginals back into
// categorical marginal tables.
//
// ByteCursor is the bounded little-endian reader the untrusted-input
// decoders (protocols/wire.h collection frames and wire batches,
// engine/checkpoint.cc container records) are built on: every read is
// bounds-checked against the span, offsets are byte-precise for error
// messages, and no length arithmetic on attacker-controlled values can
// wrap (see CheckedAdd / CheckedMul). The fuzz harnesses under fuzz/
// hammer exactly these decoders.

#ifndef LDPM_CORE_ENCODING_H_
#define LDPM_CORE_ENCODING_H_

#include <bit>
#include <cstdint>
#include <cstring>
#include <vector>

#include "core/contingency_table.h"
#include "core/status.h"

namespace ldpm {

// ---- Overflow-checked length arithmetic ------------------------------------

/// out = a + b, or false if the sum wraps uint64. Use for any length or
/// offset computed from attacker-controlled bytes.
[[nodiscard]] constexpr bool CheckedAdd(uint64_t a, uint64_t b,
                                        uint64_t* out) {
  if (b > UINT64_MAX - a) return false;
  *out = a + b;
  return true;
}

/// out = a * b, or false if the product wraps uint64.
[[nodiscard]] constexpr bool CheckedMul(uint64_t a, uint64_t b,
                                        uint64_t* out) {
  if (a != 0 && b > UINT64_MAX / a) return false;
  *out = a * b;
  return true;
}

/// Bounded sequential little-endian reader over a byte span.
///
/// Invariant: offset() <= size at all times, so `n <= remaining()` is a
/// complete bounds check for any uint64 n — there is no arithmetic a
/// hostile length prefix can wrap. Failed reads never advance the cursor,
/// so truncation errors report the exact byte offset of the field that
/// could not be read; `context` prefixes every message ("checkpoint",
/// "wire batch", ...).
class ByteCursor {
 public:
  ByteCursor(const uint8_t* data, size_t size, const char* context)
      : data_(data), size_(size), context_(context) {}

  /// Current byte offset from the start of the span.
  size_t offset() const { return cursor_; }
  size_t remaining() const { return size_ - cursor_; }
  bool AtEnd() const { return cursor_ == size_; }

  /// True when `n` more bytes are available. Safe for any n: the
  /// comparison is against remaining(), never `offset + n`.
  bool CanRead(uint64_t n) const { return n <= size_ - cursor_; }

  Status ReadU8(uint8_t& v, const char* field) {
    if (!CanRead(1)) return TruncatedError(cursor_, field);
    v = data_[cursor_++];
    return Status::OK();
  }

  Status ReadU16(uint16_t& v, const char* field) {
    if (!CanRead(2)) return TruncatedError(cursor_, field);
    if constexpr (std::endian::native == std::endian::little) {
      std::memcpy(&v, data_ + cursor_, 2);
    } else {
      v = static_cast<uint16_t>(static_cast<uint16_t>(data_[cursor_]) |
                                static_cast<uint16_t>(data_[cursor_ + 1])
                                    << 8);
    }
    cursor_ += 2;
    return Status::OK();
  }

  Status ReadU32(uint32_t& v, const char* field) {
    if (!CanRead(4)) return TruncatedError(cursor_, field);
    if constexpr (std::endian::native == std::endian::little) {
      std::memcpy(&v, data_ + cursor_, 4);
    } else {
      v = static_cast<uint32_t>(data_[cursor_]) |
          static_cast<uint32_t>(data_[cursor_ + 1]) << 8 |
          static_cast<uint32_t>(data_[cursor_ + 2]) << 16 |
          static_cast<uint32_t>(data_[cursor_ + 3]) << 24;
    }
    cursor_ += 4;
    return Status::OK();
  }

  Status ReadU64(uint64_t& v, const char* field) {
    if (!CanRead(8)) return TruncatedError(cursor_, field);
    if constexpr (std::endian::native == std::endian::little) {
      std::memcpy(&v, data_ + cursor_, 8);
    } else {
      v = 0;
      for (int b = 0; b < 8; ++b) {
        v |= uint64_t{data_[cursor_ + b]} << (8 * b);
      }
    }
    cursor_ += 8;
    return Status::OK();
  }

  Status ReadDouble(double& v, const char* field) {
    uint64_t bits = 0;
    LDPM_RETURN_IF_ERROR(ReadU64(bits, field));
    v = std::bit_cast<double>(bits);
    return Status::OK();
  }

  /// Points `p` at the next `n` bytes and consumes them. `n` is uint64 on
  /// purpose: length prefixes flow in unconverted, so no caller ever casts
  /// an attacker-controlled u64 down to size_t before the bounds check.
  Status ReadBytes(const uint8_t*& p, uint64_t n, const char* field) {
    if (!CanRead(n)) return TruncatedError(cursor_, field);
    p = data_ + cursor_;
    cursor_ += static_cast<size_t>(n);
    return Status::OK();
  }

  /// Consumes `n` bytes without exposing them.
  Status Skip(uint64_t n, const char* field) {
    if (!CanRead(n)) return TruncatedError(cursor_, field);
    cursor_ += static_cast<size_t>(n);
    return Status::OK();
  }

  /// OK at end-of-span; otherwise "<context>: N trailing bytes after
  /// <what>". Decoders of complete images call this last so appended
  /// garbage is rejected, not ignored.
  Status ExpectEnd(const char* what) const;

  /// "<context>: truncated <field> at byte <at>". Public so a caller can
  /// anchor a truncation error at an enclosing structure's offset (e.g. a
  /// payload error reported at its length prefix).
  Status TruncatedError(size_t at, const char* field) const;

 private:
  const uint8_t* data_;
  size_t size_;
  const char* context_;
  size_t cursor_ = 0;
};

/// Describes a mixed categorical domain and its packed binary encoding.
class CategoricalDomain {
 public:
  /// Creates a domain from per-attribute cardinalities. Every cardinality
  /// must be >= 2 and the total encoded width must fit kMaxDimensions.
  static StatusOr<CategoricalDomain> Create(std::vector<uint32_t> cardinalities);

  /// Number of categorical attributes d.
  int num_attributes() const { return static_cast<int>(cardinalities_.size()); }

  /// Cardinality r_i of attribute i.
  uint32_t cardinality(int i) const { return cardinalities_[i]; }

  /// Encoded width of attribute i: ceil(log2 r_i).
  int attribute_bits(int i) const { return bits_[i]; }

  /// Total binary dimension d2 = sum_i ceil(log2 r_i).
  int binary_dimension() const { return total_bits_; }

  /// Mask (within the packed encoding) of the bits carrying attribute i.
  uint64_t attribute_mask(int i) const { return masks_[i]; }

  /// Packs one categorical tuple into its binary encoding. Fails if the
  /// tuple length or any value is out of range.
  StatusOr<uint64_t> Encode(const std::vector<uint32_t>& values) const;

  /// Unpacks a binary-encoded row back to categorical values. Fails if any
  /// attribute's bit pattern exceeds its cardinality (an *invalid code*,
  /// possible only for non-power-of-two cardinalities).
  StatusOr<std::vector<uint32_t>> Decode(uint64_t packed) const;

  /// The binary marginal selector covering all encoded bits of the given
  /// attributes (duplicates rejected). Its order is the k2 of Corollary 6.1.
  StatusOr<uint64_t> SelectorForAttributes(const std::vector<int>& attrs) const;

 private:
  explicit CategoricalDomain(std::vector<uint32_t> cardinalities);

  std::vector<uint32_t> cardinalities_;
  std::vector<int> bits_;
  std::vector<uint64_t> masks_;
  int total_bits_ = 0;
};

/// A categorical marginal recovered from a binary-encoded estimate.
struct CategoricalMarginal {
  /// Attribute ids, in the caller's order.
  std::vector<int> attributes;
  /// Probabilities indexed mixed-radix: attributes[0] is the fastest-varying
  /// digit. Size = product of the attributes' cardinalities.
  std::vector<double> probabilities;
  /// Estimated probability mass that landed on invalid bit patterns (codes
  /// >= r_i). Zero for exact inputs; noise can place mass there.
  double invalid_mass = 0.0;
};

/// Folds a binary marginal over SelectorForAttributes(attrs) back into a
/// categorical marginal. Mass on invalid codes is reported, not
/// redistributed.
StatusOr<CategoricalMarginal> ToCategoricalMarginal(
    const CategoricalDomain& domain, const std::vector<int>& attrs,
    const MarginalTable& binary_marginal);

}  // namespace ldpm

#endif  // LDPM_CORE_ENCODING_H_
