#include "core/hadamard.h"

#include <bit>

#include "core/bits.h"

namespace ldpm {

void FastWalshHadamard(std::vector<double>& data) {
  LDPM_CHECK(!data.empty() && std::has_single_bit(data.size()));
  const size_t n = data.size();
  for (size_t len = 1; len < n; len <<= 1) {
    for (size_t block = 0; block < n; block += len << 1) {
      for (size_t i = block; i < block + len; ++i) {
        const double a = data[i];
        const double b = data[i + len];
        data[i] = a + b;
        data[i + len] = a - b;
      }
    }
  }
}

void InverseFastWalshHadamard(std::vector<double>& data) {
  FastWalshHadamard(data);
  const double scale = 1.0 / static_cast<double>(data.size());
  for (double& v : data) v *= scale;
}

double FourierCoefficient(const ContingencyTable& t, uint64_t alpha) {
  double sum = 0.0;
  for (uint64_t eta = 0; eta < t.size(); ++eta) {
    sum += HadamardSign(alpha, eta) * t[eta];
  }
  return sum;
}

StatusOr<double> FourierCoefficients::Get(uint64_t alpha) const {
  if (alpha == 0) return 1.0;
  auto it = coeffs_.find(alpha);
  if (it == coeffs_.end()) {
    return Status::NotFound("FourierCoefficients: coefficient not present");
  }
  return it->second;
}

StatusOr<MarginalTable> FourierCoefficients::ReconstructMarginal(
    uint64_t beta) const {
  if (d_ < 64 && beta >= (uint64_t{1} << d_)) {
    return Status::OutOfRange("ReconstructMarginal: beta outside domain");
  }
  MarginalTable m(d_, beta);
  const int k = m.order();
  const double scale = 1.0 / static_cast<double>(uint64_t{1} << k);

  // Gather the needed coefficients once (2^k of them including f_0 = 1).
  std::vector<uint64_t> alphas;
  std::vector<double> coeffs;
  alphas.reserve(m.size());
  coeffs.reserve(m.size());
  Status missing = Status::OK();
  ForEachSubset(beta, [&](uint64_t alpha) {
    if (!missing.ok()) return;
    auto c = Get(alpha);
    if (!c.ok()) {
      missing = c.status();
      return;
    }
    alphas.push_back(alpha);
    coeffs.push_back(*c);
  });
  if (!missing.ok()) return missing;

  for (uint64_t idx = 0; idx < m.size(); ++idx) {
    const uint64_t gamma = m.CompactToCell(idx);
    double v = 0.0;
    for (size_t a = 0; a < alphas.size(); ++a) {
      v += coeffs[a] * HadamardSign(alphas[a], gamma);
    }
    m.at_compact(idx) = v * scale;
  }
  return m;
}

FourierCoefficients FourierCoefficients::FromTable(const ContingencyTable& t,
                                                   int k) {
  FourierCoefficients fc(t.dimensions());
  ForEachLowOrderMask(t.dimensions(), k, [&](uint64_t alpha) {
    fc.Set(alpha, FourierCoefficient(t, alpha));
  });
  return fc;
}

}  // namespace ldpm
