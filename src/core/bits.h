// Bit-manipulation substrate for the Boolean hypercube {0,1}^d.
//
// Throughout ldpm a point of the hypercube (a user's attribute vector, a
// marginal selector beta, a Fourier coefficient index alpha, ...) is packed
// into the low d bits of a uint64_t, attribute 0 in bit 0. All marginal and
// Hadamard machinery reduces to the primitives in this header: parity inner
// products, subset iteration, and rank/unrank of fixed-popcount indices.

#ifndef LDPM_CORE_BITS_H_
#define LDPM_CORE_BITS_H_

#include <bit>
#include <cstdint>
#include <vector>

#include "core/status.h"

namespace ldpm {

/// Maximum supported number of binary attributes. Dense 2^d tables are only
/// materialized by callers for much smaller d; this bound merely keeps index
/// arithmetic within uint64_t.
inline constexpr int kMaxDimensions = 62;

/// Number of set bits (|x| in the paper's notation).
inline int Popcount(uint64_t x) { return std::popcount(x); }

/// The GF(2) inner product <i,j> used by the Hadamard transform:
/// parity of the number of bit positions where both i and j are 1.
/// Returns 0 or 1.
inline int InnerProductParity(uint64_t i, uint64_t j) {
  return std::popcount(i & j) & 1;
}

/// (-1)^{<i,j>} as a double: +1.0 when the parity is even, -1.0 when odd.
inline double HadamardSign(uint64_t i, uint64_t j) {
  return InnerProductParity(i, j) ? -1.0 : 1.0;
}

/// (-1)^{<i,j>} as an int in {-1, +1}.
inline int HadamardSignInt(uint64_t i, uint64_t j) {
  return InnerProductParity(i, j) ? -1 : 1;
}

/// True iff alpha is a sub-mask of beta (alpha ⪯ beta in the paper:
/// every set bit of alpha is also set in beta).
inline bool IsSubset(uint64_t alpha, uint64_t beta) {
  return (alpha & ~beta) == 0;
}

/// Number of cells in a table over d binary attributes (2^d).
inline uint64_t DomainSize(int d) {
  LDPM_DCHECK(d >= 0 && d <= kMaxDimensions);
  return uint64_t{1} << d;
}

namespace internal {

/// Dense Pascal triangle C(n, r) for 0 <= r <= n <= kMaxDimensions, built at
/// compile time. Backs the O(popcount) combinatorial ranking below, which
/// replaces hash-map selector lookups on the aggregator hot path.
struct PascalTable {
  uint64_t c[kMaxDimensions + 1][kMaxDimensions + 1];
  constexpr PascalTable() : c{} {
    for (int n = 0; n <= kMaxDimensions; ++n) {
      c[n][0] = 1;
      for (int r = 1; r <= n; ++r) c[n][r] = c[n - 1][r - 1] + c[n - 1][r];
    }
  }
};

inline constexpr PascalTable kPascal{};

}  // namespace internal

/// Table-backed C(n, r); zero outside 0 <= r <= n <= kMaxDimensions.
inline uint64_t BinomialLookup(int n, int r) {
  if (r < 0 || r > n || n > kMaxDimensions) return 0;
  return internal::kPascal.c[n][r];
}

/// Rank of `mask` among all masks with the same popcount, in increasing
/// numeric order (the combinatorial number system / colex rank): with set
/// bit positions p_1 < p_2 < ... < p_r, rank = sum_j C(p_j, j).
///
/// KWaySelectors / ForEachMaskWithPopcount enumerate masks in exactly this
/// order, so CombinationRank(selectors[i]) == i — a dense, allocation-free
/// index that replaces per-report unordered_map lookups.
inline uint64_t CombinationRank(uint64_t mask) {
  uint64_t rank = 0;
  int j = 0;
  while (mask != 0) {
    const int pos = std::countr_zero(mask);
    ++j;
    rank += BinomialLookup(pos, j);
    mask &= mask - 1;
  }
  return rank;
}

/// C(n, r) as uint64_t; exact for every n <= 62 relevant here.
inline uint64_t BinomialCoefficient(int n, int r) {
  if (r < 0 || r > n) return 0;
  if (r > n - r) r = n - r;
  uint64_t result = 1;
  for (int i = 1; i <= r; ++i) {
    // Multiply before divide stays exact because result * (n-r+i) is a
    // product of i consecutive integers divided by i!.
    result = result * static_cast<uint64_t>(n - r + i) / static_cast<uint64_t>(i);
  }
  return result;
}

/// Number of nonzero Hadamard coefficient indices needed for full k-way
/// marginals over d attributes: |T| = sum_{l=1..k} C(d, l).
inline uint64_t LowOrderCoefficientCount(int d, int k) {
  uint64_t total = 0;
  for (int l = 1; l <= k; ++l) total += BinomialCoefficient(d, l);
  return total;
}

/// Iterates all sub-masks of `mask` (including 0 and mask itself) in
/// decreasing numeric order, invoking fn(submask) for each.
///
/// Uses the standard (s - 1) & mask walk: visits exactly 2^{popcount(mask)}
/// values.
template <typename Fn>
inline void ForEachSubset(uint64_t mask, Fn&& fn) {
  uint64_t s = mask;
  while (true) {
    fn(s);
    if (s == 0) break;
    s = (s - 1) & mask;
  }
}

/// Returns all sub-masks of `mask`, most-significant first.
std::vector<uint64_t> inline AllSubsets(uint64_t mask) {
  std::vector<uint64_t> out;
  out.reserve(uint64_t{1} << Popcount(mask));
  ForEachSubset(mask, [&](uint64_t s) { out.push_back(s); });
  return out;
}

/// Next integer with the same popcount (Gosper's hack). Precondition:
/// x != 0 and the successor fits in 64 bits.
inline uint64_t NextSamePopcount(uint64_t x) {
  uint64_t c = x & (~x + 1);
  uint64_t r = x + c;
  return (((r ^ x) >> 2) / c) | r;
}

/// Enumerates every mask over d bits with exactly r set bits, in increasing
/// numeric order, invoking fn(mask) for each of the C(d, r) values.
template <typename Fn>
inline void ForEachMaskWithPopcount(int d, int r, Fn&& fn) {
  LDPM_DCHECK(d >= 0 && d <= kMaxDimensions);
  if (r < 0 || r > d) return;
  if (r == 0) {
    fn(uint64_t{0});
    return;
  }
  uint64_t mask = (uint64_t{1} << r) - 1;
  const uint64_t limit = uint64_t{1} << d;
  while (mask < limit) {
    fn(mask);
    if (mask == ((limit - 1) >> (d - r)) << (d - r)) break;  // top block
    mask = NextSamePopcount(mask);
  }
}

/// Enumerates every mask over d bits with popcount in [1, k], grouped by
/// popcount (all 1-bit masks, then all 2-bit masks, ...).
template <typename Fn>
inline void ForEachLowOrderMask(int d, int k, Fn&& fn) {
  for (int r = 1; r <= k; ++r) {
    ForEachMaskWithPopcount(d, r, fn);
  }
}

/// Materializes the masks visited by ForEachLowOrderMask.
std::vector<uint64_t> inline LowOrderMasks(int d, int k) {
  std::vector<uint64_t> out;
  out.reserve(LowOrderCoefficientCount(d, k));
  ForEachLowOrderMask(d, k, [&](uint64_t m) { out.push_back(m); });
  return out;
}

/// Compresses the bits of `value` selected by `mask` into a contiguous
/// low-order index (parallel bit extract). For beta with |beta| = k this
/// maps a cell index gamma ⪯ beta of a marginal table into [0, 2^k).
inline uint64_t ExtractBits(uint64_t value, uint64_t mask) {
#if defined(__BMI2__)
  return _pext_u64(value, mask);
#else
  uint64_t out = 0;
  int out_bit = 0;
  while (mask != 0) {
    uint64_t low = mask & (~mask + 1);
    if (value & low) out |= uint64_t{1} << out_bit;
    ++out_bit;
    mask ^= low;
  }
  return out;
#endif
}

/// Inverse of ExtractBits: scatters the low popcount(mask) bits of `compact`
/// to the positions of `mask` (parallel bit deposit).
inline uint64_t DepositBits(uint64_t compact, uint64_t mask) {
#if defined(__BMI2__)
  return _pdep_u64(compact, mask);
#else
  uint64_t out = 0;
  int in_bit = 0;
  while (mask != 0) {
    uint64_t low = mask & (~mask + 1);
    if (compact & (uint64_t{1} << in_bit)) out |= low;
    ++in_bit;
    mask ^= low;
  }
  return out;
#endif
}

}  // namespace ldpm

#endif  // LDPM_CORE_BITS_H_
