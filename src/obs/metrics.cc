#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace ldpm {
namespace obs {

namespace {

/// Prometheus metric-name grammar for the base name (the part before any
/// label set): [a-zA-Z_:][a-zA-Z0-9_:]*
bool ValidBaseName(std::string_view base) {
  if (base.empty()) return false;
  auto head_ok = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           c == ':';
  };
  if (!head_ok(base[0])) return false;
  for (char c : base.substr(1)) {
    if (!head_ok(c) && !(c >= '0' && c <= '9')) return false;
  }
  return true;
}

/// Splits a full series name into base and label block ("{...}" or empty).
/// Validates the base; the label block is trusted to come from WithLabels
/// (it must start with '{' and end with '}' when present).
bool SplitName(std::string_view name, std::string_view& base,
               std::string_view& labels) {
  const size_t brace = name.find('{');
  if (brace == std::string_view::npos) {
    base = name;
    labels = {};
  } else {
    base = name.substr(0, brace);
    labels = name.substr(brace);
    if (labels.size() < 2 || labels.back() != '}') return false;
  }
  return ValidBaseName(base);
}

void AppendEscaped(std::string_view value, std::string& out) {
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
}

/// Rebuilds a series name with one more label appended (the histogram
/// exposition needs `le` merged into an existing label set).
std::string NameWithExtraLabel(std::string_view base, std::string_view labels,
                               std::string_view key, std::string_view value) {
  std::string out(base);
  if (labels.empty()) {
    out += '{';
  } else {
    out.append(labels.substr(0, labels.size() - 1));  // drop '}'
    out += ',';
  }
  out += key;
  out += "=\"";
  AppendEscaped(value, out);
  out += "\"}";
  return out;
}

std::string FormatValue(uint64_t value) { return std::to_string(value); }
std::string FormatValue(int64_t value) { return std::to_string(value); }

}  // namespace

// ---- Histogram -------------------------------------------------------------

Histogram::Histogram(std::vector<uint64_t> bounds)
    : bounds_(std::move(bounds)),
      buckets_(new std::atomic<uint64_t>[bounds_.size() + 1]) {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snapshot;
  snapshot.bounds = bounds_;
  snapshot.buckets.resize(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    snapshot.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    snapshot.count += snapshot.buckets[i];
  }
  // Read the sum AFTER the buckets: a racing Observe bumps its bucket
  // before its sum, so this order can only over-read sum relative to
  // count — and the snapshot stays a valid "at least this much" state.
  snapshot.sum = sum_.load(std::memory_order_relaxed);
  return snapshot;
}

Status HistogramSnapshot::MergeFrom(const HistogramSnapshot& other) {
  if (bounds != other.bounds) {
    return Status::InvalidArgument(
        "HistogramSnapshot: cannot merge histograms with different bucket "
        "bounds");
  }
  for (size_t i = 0; i < buckets.size(); ++i) buckets[i] += other.buckets[i];
  count += other.count;
  sum += other.sum;
  return Status::OK();
}

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  const double target = q * static_cast<double>(count);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    const uint64_t next = cumulative + buckets[i];
    if (static_cast<double>(next) >= target) {
      if (i == bounds.size()) {
        // Overflow bucket: no finite upper bound to interpolate toward.
        return static_cast<double>(bounds.back());
      }
      const double lower =
          i == 0 ? 0.0 : static_cast<double>(bounds[i - 1]);
      const double upper = static_cast<double>(bounds[i]);
      const double within =
          (target - static_cast<double>(cumulative)) /
          static_cast<double>(buckets[i]);
      return lower + (upper - lower) * within;
    }
    cumulative = next;
  }
  return static_cast<double>(bounds.back());
}

std::vector<uint64_t> ExponentialBuckets(uint64_t start, double factor,
                                         int count) {
  std::vector<uint64_t> bounds;
  bounds.reserve(static_cast<size_t>(count));
  double bound = static_cast<double>(start);
  for (int i = 0; i < count; ++i) {
    const auto rounded = static_cast<uint64_t>(std::llround(bound));
    // Guarantee strict monotonicity even if rounding collapses two steps.
    if (bounds.empty() || rounded > bounds.back()) {
      bounds.push_back(rounded);
    } else {
      bounds.push_back(bounds.back() + 1);
    }
    bound *= factor;
  }
  return bounds;
}

const std::vector<uint64_t>& LatencyBuckets() {
  static const std::vector<uint64_t> buckets =
      ExponentialBuckets(256, 2.0, 26);
  return buckets;
}

// ---- WithLabels ------------------------------------------------------------

std::string WithLabels(
    std::string_view base,
    std::initializer_list<std::pair<std::string_view, std::string_view>>
        labels) {
  std::string out(base);
  if (labels.size() == 0) return out;
  out += '{';
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ',';
    first = false;
    out += key;
    out += "=\"";
    AppendEscaped(value, out);
    out += "\"";
  }
  out += '}';
  return out;
}

// ---- MetricsRegistry -------------------------------------------------------

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     std::string_view help) {
  std::string_view base, labels;
  if (!SplitName(name, base, labels)) return nullptr;
  core::MutexLock lock(mu_);
  auto it = metrics_.find(name);
  if (it != metrics_.end()) {
    return it->second.kind == Kind::kCounter ? it->second.counter.get()
                                             : nullptr;
  }
  Entry entry;
  entry.kind = Kind::kCounter;
  entry.help = std::string(help);
  entry.counter = std::make_unique<Counter>();
  Counter* counter = entry.counter.get();
  metrics_.emplace(name, std::move(entry));
  return counter;
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 std::string_view help) {
  std::string_view base, labels;
  if (!SplitName(name, base, labels)) return nullptr;
  core::MutexLock lock(mu_);
  auto it = metrics_.find(name);
  if (it != metrics_.end()) {
    return it->second.kind == Kind::kGauge ? it->second.gauge.get() : nullptr;
  }
  Entry entry;
  entry.kind = Kind::kGauge;
  entry.help = std::string(help);
  entry.gauge = std::make_unique<Gauge>();
  Gauge* gauge = entry.gauge.get();
  metrics_.emplace(name, std::move(entry));
  return gauge;
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::vector<uint64_t>& bounds,
                                         std::string_view help) {
  std::string_view base, labels;
  if (!SplitName(name, base, labels)) return nullptr;
  if (bounds.empty()) return nullptr;
  for (size_t i = 1; i < bounds.size(); ++i) {
    if (bounds[i] <= bounds[i - 1]) return nullptr;
  }
  core::MutexLock lock(mu_);
  auto it = metrics_.find(name);
  if (it != metrics_.end()) {
    if (it->second.kind != Kind::kHistogram) return nullptr;
    if (it->second.histogram->bounds() != bounds) return nullptr;
    return it->second.histogram.get();
  }
  Entry entry;
  entry.kind = Kind::kHistogram;
  entry.help = std::string(help);
  entry.histogram = std::make_unique<Histogram>(bounds);
  Histogram* histogram = entry.histogram.get();
  metrics_.emplace(name, std::move(entry));
  return histogram;
}

const MetricsRegistry::Entry* MetricsRegistry::FindEntry(
    std::string_view name) const {
  auto it = metrics_.find(name);
  return it == metrics_.end() ? nullptr : &it->second;
}

uint64_t MetricsRegistry::CounterValue(std::string_view name) const {
  core::MutexLock lock(mu_);
  const Entry* entry = FindEntry(name);
  return entry != nullptr && entry->kind == Kind::kCounter
             ? entry->counter->Value()
             : 0;
}

int64_t MetricsRegistry::GaugeValue(std::string_view name) const {
  core::MutexLock lock(mu_);
  const Entry* entry = FindEntry(name);
  return entry != nullptr && entry->kind == Kind::kGauge
             ? entry->gauge->Value()
             : 0;
}

StatusOr<HistogramSnapshot> MetricsRegistry::HistogramValues(
    std::string_view name) const {
  core::MutexLock lock(mu_);
  const Entry* entry = FindEntry(name);
  if (entry == nullptr || entry->kind != Kind::kHistogram) {
    return Status::NotFound("MetricsRegistry: no histogram \"" +
                            std::string(name) + "\"");
  }
  return entry->histogram->Snapshot();
}

std::vector<std::string> MetricsRegistry::Names() const {
  core::MutexLock lock(mu_);
  std::vector<std::string> names;
  names.reserve(metrics_.size());
  for (const auto& [name, entry] : metrics_) names.push_back(name);
  return names;
}

std::string MetricsRegistry::TextExposition() const {
  core::MutexLock lock(mu_);
  std::string out;
  std::string previous_base;
  for (const auto& [name, entry] : metrics_) {
    std::string_view base, labels;
    if (!SplitName(name, base, labels)) continue;  // unreachable by contract
    if (base != previous_base) {
      // One HELP/TYPE per family; map order keeps a family's label
      // variants contiguous ('_' < '{' in ASCII keeps "foo_bucketish"
      // names from interleaving differently-labeled "foo" series).
      previous_base = std::string(base);
      if (!entry.help.empty()) {
        out += "# HELP ";
        out += base;
        out += ' ';
        out += entry.help;
        out += '\n';
      }
      out += "# TYPE ";
      out += base;
      switch (entry.kind) {
        case Kind::kCounter: out += " counter\n"; break;
        case Kind::kGauge: out += " gauge\n"; break;
        case Kind::kHistogram: out += " histogram\n"; break;
      }
    }
    switch (entry.kind) {
      case Kind::kCounter:
        out += name;
        out += ' ';
        out += FormatValue(entry.counter->Value());
        out += '\n';
        break;
      case Kind::kGauge:
        out += name;
        out += ' ';
        out += FormatValue(entry.gauge->Value());
        out += '\n';
        break;
      case Kind::kHistogram: {
        const HistogramSnapshot snapshot = entry.histogram->Snapshot();
        uint64_t cumulative = 0;
        for (size_t i = 0; i < snapshot.bounds.size(); ++i) {
          cumulative += snapshot.buckets[i];
          out += NameWithExtraLabel(std::string(base) + "_bucket", labels,
                                    "le", std::to_string(snapshot.bounds[i]));
          out += ' ';
          out += FormatValue(cumulative);
          out += '\n';
        }
        out += NameWithExtraLabel(std::string(base) + "_bucket", labels, "le",
                                  "+Inf");
        out += ' ';
        out += FormatValue(snapshot.count);
        out += '\n';
        out += std::string(base) + "_sum" + std::string(labels);
        out += ' ';
        out += FormatValue(snapshot.sum);
        out += '\n';
        out += std::string(base) + "_count" + std::string(labels);
        out += ' ';
        out += FormatValue(snapshot.count);
        out += '\n';
        break;
      }
    }
  }
  return out;
}

MetricsRegistry* MetricsRegistry::Default() {
  // Leaked on purpose: metrics outlive every component that might still
  // increment them during static destruction.
  static MetricsRegistry* const registry = new MetricsRegistry();
  return registry;
}

}  // namespace obs
}  // namespace ldpm
