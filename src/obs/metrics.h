// Lock-friendly operational metrics for the whole pipeline.
//
// The paper's deployment is telemetry collection from millions of clients;
// the collector itself must therefore be observable the way any production
// telemetry service is: live counters, gauges, and latency histograms an
// operator (or the /stats endpoint, net/stats_server.h) can scrape while
// ingest runs at full speed. Three rules shape the design:
//
//   * Hot-path writes are relaxed atomics, never locks. Counter increments
//     stripe across cache-line-padded slots (one write per increment, no
//     contention between shard workers); gauge and histogram updates are
//     single relaxed RMWs. The bench regression gate proves wire ingest
//     stays in-gate with instrumentation enabled.
//   * Reads never stop writers. Snapshots and TextExposition() read the
//     same atomics; a snapshot taken mid-write is a valid recent state
//     (every monotone series it reports is <= the true value at return).
//   * Registration is rare and locked. MetricsRegistry::Get* takes a mutex
//     and returns a pointer that stays valid for the registry's lifetime —
//     instrument by caching the pointer once at construction, not by
//     looking names up per event.
//
// Metric names follow the Prometheus data model: `ldpm_<layer>_<what>`
// base names, `_total` for counters, `_ns` for nanosecond-valued series,
// and label sets rendered into the name with WithLabels() (the registry
// treats every distinct label set as its own series, which is exactly the
// Prometheus text exposition contract). docs/observability.md catalogs
// every metric the pipeline emits.

#ifndef LDPM_OBS_METRICS_H_
#define LDPM_OBS_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/status.h"
#include "core/sync.h"

namespace ldpm {
namespace obs {

/// A monotonically increasing counter. Increments stripe over
/// cache-line-padded atomic slots keyed by thread, so concurrent writers
/// (shard workers, connection readers) never contend on one line; Value()
/// sums the stripes. All operations are wait-free.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Increment(uint64_t n = 1) {
    stripes_[ThreadStripe()].value.fetch_add(n, std::memory_order_relaxed);
  }

  /// Sum over all stripes. Monotone: never exceeds the true total at the
  /// time this call returns, never decreases between calls.
  uint64_t Value() const {
    uint64_t total = 0;
    for (const Stripe& stripe : stripes_) {
      total += stripe.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  static constexpr size_t kStripes = 16;  // power of two for mask indexing

  struct alignas(64) Stripe {
    std::atomic<uint64_t> value{0};
  };

  /// Stable per-thread stripe index: threads are assigned round-robin on
  /// first use, so a fixed worker set spreads evenly and two workers never
  /// share a line unless there are more than kStripes of them.
  static size_t ThreadStripe() {
    static std::atomic<size_t> next{0};
    thread_local const size_t stripe =
        next.fetch_add(1, std::memory_order_relaxed) & (kStripes - 1);
    return stripe;
  }

  Stripe stripes_[kStripes];
};

/// A signed instantaneous value (queue depth, live connections, ...).
/// Single atomic: gauges are updated by few writers and a high-water
/// companion needs one total order anyway.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }

  /// Adds (negative to subtract) and returns the new value — feed it to a
  /// high-water gauge's UpdateMax for an exact depth/high-water pair.
  int64_t Add(int64_t delta) {
    return value_.fetch_add(delta, std::memory_order_relaxed) + delta;
  }

  /// Monotone ratchet: raises the gauge to `value` if it is higher. The
  /// high-water primitive (never lowers).
  void UpdateMax(int64_t value) {
    int64_t current = value_.load(std::memory_order_relaxed);
    while (value > current &&
           !value_.compare_exchange_weak(current, value,
                                         std::memory_order_relaxed)) {
    }
  }

  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// A point-in-time copy of a Histogram (or a merge of several). `buckets`
/// has one entry per finite bound plus a final overflow (+Inf) bucket;
/// `count` is always the bucket sum, so cumulative `le` series derived
/// from it are internally consistent even when the copy raced writers.
struct HistogramSnapshot {
  /// Inclusive upper bounds ("le"), strictly increasing.
  std::vector<uint64_t> bounds;
  /// Observations per bucket; buckets.size() == bounds.size() + 1.
  std::vector<uint64_t> buckets;
  /// Total observations (== sum of buckets).
  uint64_t count = 0;
  /// Sum of observed values. May transiently lag `count` while writers
  /// race the snapshot; exact once writers quiesce.
  uint64_t sum = 0;

  /// Adds another snapshot taken over the SAME bucket bounds (the
  /// mergeable-state contract, mirroring the aggregators').
  Status MergeFrom(const HistogramSnapshot& other);

  /// Estimated q-quantile (q in [0,1]) by linear interpolation within the
  /// containing bucket; observations in the overflow bucket answer the
  /// last finite bound. 0 when empty.
  double Quantile(double q) const;

  double Mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
};

/// A fixed-bucket histogram: one relaxed add per bucket/sum on Observe,
/// no locks, snapshot-while-writing safe. Bounds are fixed at creation
/// (log-spaced for latencies — see LatencyBuckets/ExponentialBuckets).
class Histogram {
 public:
  /// `bounds` are inclusive upper bounds and must be strictly increasing
  /// and non-empty (checked; violations abort via LDPM_CHECK at the
  /// registry boundary, which validates before constructing).
  explicit Histogram(std::vector<uint64_t> bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(uint64_t value) {
    // Branch-free enough: bounds_ is small (<= ~30) and read-only, so the
    // binary search touches shared cache lines nobody invalidates.
    size_t lo = 0, hi = bounds_.size();
    while (lo < hi) {
      const size_t mid = (lo + hi) / 2;
      if (value <= bounds_[mid]) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    buckets_[lo].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  const std::vector<uint64_t>& bounds() const { return bounds_; }

  /// Copies the current state. `count` is computed as the bucket sum, so
  /// the snapshot is always self-consistent (see HistogramSnapshot).
  HistogramSnapshot Snapshot() const;

 private:
  std::vector<uint64_t> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;  // bounds_.size() + 1
  std::atomic<uint64_t> sum_{0};
};

/// Log-spaced bucket bounds: start, start*factor, ... (`count` bounds).
std::vector<uint64_t> ExponentialBuckets(uint64_t start, double factor,
                                         int count);

/// The default latency bucket ladder: 26 power-of-two bounds from 256 ns
/// to ~8.6 s — wide enough for a single relaxed increment and a full
/// collector drain on the same scale.
const std::vector<uint64_t>& LatencyBuckets();

/// RAII latency probe: records elapsed nanoseconds into a histogram when
/// destroyed (or at an explicit ObserveNow). A null histogram makes every
/// operation a no-op, so call sites need no "metrics enabled?" branches.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram) : histogram_(histogram) {
    if (histogram_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() { ObserveNow(); }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Records once and returns the elapsed nanoseconds (0 if disabled or
  /// already recorded). The destructor then does nothing.
  uint64_t ObserveNow() {
    if (histogram_ == nullptr) return 0;
    const auto elapsed = std::chrono::duration_cast<std::chrono::nanoseconds>(
                             std::chrono::steady_clock::now() - start_)
                             .count();
    const uint64_t ns = elapsed < 0 ? 0 : static_cast<uint64_t>(elapsed);
    histogram_->Observe(ns);
    histogram_ = nullptr;
    return ns;
  }

  /// Forgets the measurement (e.g. the timed operation was aborted).
  void Cancel() { histogram_ = nullptr; }

 private:
  Histogram* histogram_;
  std::chrono::steady_clock::time_point start_;
};

/// Renders `base{key="value",...}` — the one way label sets enter the
/// registry. Values are escaped per the Prometheus text format (backslash,
/// quote, newline). Every distinct rendered name is its own series;
/// TextExposition groups series of one base name under one HELP/TYPE.
std::string WithLabels(
    std::string_view base,
    std::initializer_list<std::pair<std::string_view, std::string_view>>
        labels);

/// The named-metric registry (see the file comment for the contract).
/// Metrics are created on first Get and never removed, so returned
/// pointers are valid for the registry's lifetime. Each component of the
/// pipeline takes a registry in its options; one registry per process
/// (Default()) gives one /stats page for everything.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create. Returns null only on a contract violation: an
  /// invalid name, a name already registered as a different metric kind,
  /// or (histograms) the same name with different bucket bounds.
  Counter* GetCounter(const std::string& name, std::string_view help = "");
  Gauge* GetGauge(const std::string& name, std::string_view help = "");
  Histogram* GetHistogram(const std::string& name,
                          const std::vector<uint64_t>& bounds,
                          std::string_view help = "");

  /// Point reads by full series name (base + rendered labels), for tests
  /// and reconciliation. Zero / empty when the series does not exist.
  uint64_t CounterValue(std::string_view name) const;
  int64_t GaugeValue(std::string_view name) const;
  /// Null when the series does not exist or is not a histogram.
  StatusOr<HistogramSnapshot> HistogramValues(std::string_view name) const;

  /// All registered series names, sorted.
  std::vector<std::string> Names() const;

  /// The Prometheus text exposition (format version 0.0.4) of every
  /// registered metric: HELP/TYPE per family, one line per series,
  /// histograms expanded into cumulative `_bucket{le=...}`, `_sum`, and
  /// `_count`. Safe to call while writers run.
  std::string TextExposition() const;

  /// The process-wide registry, for deployments that want every subsystem
  /// on one /stats page without threading a pointer through.
  static MetricsRegistry* Default();

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  struct Entry {
    Kind kind;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  const Entry* FindEntry(std::string_view name) const LDPM_REQUIRES(mu_);

  mutable core::Mutex mu_;
  /// Keyed by full series name. std::map: pointers stable, iteration
  /// sorted (so one family's series are contiguous in the exposition).
  std::map<std::string, Entry, std::less<>> metrics_ LDPM_GUARDED_BY(mu_);
};

}  // namespace obs
}  // namespace ldpm

#endif  // LDPM_OBS_METRICS_H_
