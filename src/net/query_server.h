// The read-side HTTP endpoint: consistent marginals and the fitted tree
// model, served from query::MarginalCache snapshots.
//
// A thin routing layer over net::HttpServer (shared with StatsServer),
// answering:
//
//   GET /v1/marginal?collection=<id>&attrs=<i,j,...>
//       -> 200 application/json: the consistency-post-processed marginal
//          over the named attributes, with the snapshot's watermark and
//          epoch. Cells are compact-index order (cell index c packs the
//          selected attributes, lowest attribute = bit 0), rendered with
//          17 significant digits so the JSON round-trips the doubles.
//   GET /v1/model?collection=<id>
//       -> 200 application/json: the Chow-Liu tree fitted over the
//          collection's cached 2-way marginals — edges with mutual
//          information, total MI, and every node's CPT.
//   GET /v1/collections
//       -> 200 application/json: the registered collections and their
//          cache parameters.
//   GET /healthz -> 200 "ok".
//
// Error surface is byte-precise and tested (tests/net/query_server_test):
// missing/malformed parameters are 400 with a body naming the parameter
// and the offending token; an unknown collection or path is 404; non-GET
// is 405 (from the shared plumbing).
//
// One MarginalCache per collection, created lazily on first touch, so
// collections registered after Start() are served too. Reads that hit a
// live snapshot never merge shards or take the refresh lock — the
// endpoint's throughput is the cache-hit rate (bench/query_serve.cc).
//
// The collector must outlive the server.

#ifndef LDPM_NET_QUERY_SERVER_H_
#define LDPM_NET_QUERY_SERVER_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "core/status.h"
#include "core/sync.h"
#include "engine/collector.h"
#include "net/http_server.h"
#include "query/marginal_cache.h"

namespace ldpm {
namespace net {

struct QueryServerOptions {
  /// Numeric IPv4 address to bind.
  std::string bind_address = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port (read it back with port()).
  uint16_t port = 0;
  /// Kernel accept backlog.
  int accept_backlog = 16;
  /// Cap on request bytes read before answering 400.
  size_t max_request_bytes = 8 * 1024;
  /// Idle deadline while reading a request (408 on expiry); <= 0 off.
  std::chrono::milliseconds idle_timeout{0};
  /// Cache tuning applied to every collection's MarginalCache.
  query::MarginalCacheOptions cache;
};

/// The query endpoint (see the file comment). Start() binds and serves
/// until Stop()/destruction.
class QueryServer {
 public:
  static StatusOr<std::unique_ptr<QueryServer>> Start(
      engine::Collector* collector,
      const QueryServerOptions& options = QueryServerOptions());

  ~QueryServer() = default;

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// The bound port (the ephemeral one when options.port was 0).
  uint16_t port() const { return http_->port(); }

  /// Stops accepting, wakes any in-flight request read, joins. Idempotent.
  void Stop() { http_->Stop(); }

  /// Requests answered so far (any status). Also published as
  /// ldpm_query_http_requests_total.
  uint64_t requests_served() const { return http_->requests_served(); }

  /// The collection's cache (created now if this is its first touch) —
  /// the library-side view of exactly what HTTP answers serve, for
  /// smoke tests that diff the two.
  StatusOr<query::MarginalCache*> CacheFor(const std::string& collection);

 private:
  QueryServer(engine::Collector* collector, const QueryServerOptions& options);

  HttpResponse Handle(const HttpRequest& request);
  HttpResponse HandleMarginal(const HttpRequest& request);
  HttpResponse HandleModel(const HttpRequest& request);
  HttpResponse HandleCollections();

  engine::Collector* const collector_;
  const QueryServerOptions options_;

  core::Mutex caches_mu_;
  std::map<std::string, std::unique_ptr<query::MarginalCache>> caches_
      LDPM_GUARDED_BY(caches_mu_);

  std::unique_ptr<HttpServer> http_;
};

}  // namespace net
}  // namespace ldpm

#endif  // LDPM_NET_QUERY_SERVER_H_
