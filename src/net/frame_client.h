// Client side of the network ingest stream: connects to a
// net::IngestServer, streams collection frames, and reads the server's
// close reply.
//
// The client is a thin framing layer over one blocking socket — callers
// bring their own wire batches (protocols/wire.h) exactly as they would
// hand them to Collector::IngestFrames, and the kernel's TCP flow control
// is the only queue: a saturated server makes Send block, pushing the
// backpressure all the way into the producer.

#ifndef LDPM_NET_FRAME_CLIENT_H_
#define LDPM_NET_FRAME_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/status.h"
#include "net/socket.h"

namespace ldpm {
namespace net {

/// The server's close reply, decoded (see net/protocol.h).
struct StreamReply {
  /// OK for a fully acked stream; otherwise the server's error, with the
  /// byte-precise stream offset below.
  Status status;
  /// On error: offset of the first unconsumed frame byte (counted from
  /// after the preamble) — everything before it is ingested.
  uint64_t stream_offset = 0;
  /// On success: whole frames / frame bytes the server routed.
  uint64_t frames_routed = 0;
  uint64_t bytes_routed = 0;
};

/// One ingest connection (see the file comment). Move-only; not
/// thread-safe — one streaming thread per client.
class FrameClient {
 public:
  FrameClient() = default;
  FrameClient(FrameClient&&) = default;
  FrameClient& operator=(FrameClient&&) = default;

  /// Connects and sends the protocol preamble.
  static StatusOr<FrameClient> Connect(const std::string& address,
                                       uint16_t port);

  bool connected() const { return socket_.valid(); }

  /// Frames `payload` (a wire batch, possibly empty) for `collection_id`
  /// and streams it. Blocks while the server applies backpressure.
  Status SendFrame(std::string_view collection_id, const uint8_t* payload,
                   size_t payload_size);
  Status SendFrame(std::string_view collection_id,
                   const std::vector<uint8_t>& payload);

  /// Streams pre-framed stream bytes verbatim (a concatenation of
  /// collection frames, e.g. a spooled mux file). The caller is
  /// responsible for frame integrity; the server rejects violations with
  /// a byte-precise error.
  Status SendBytes(const uint8_t* data, size_t size);

  /// Marks end-of-stream (half-close), waits for the server to absorb
  /// everything, and returns its decoded reply. The connection is done
  /// afterwards.
  StatusOr<StreamReply> Finish();

  /// Hard-closes without end-of-stream — the "client died mid-stream"
  /// path. Whole frames already received stay ingested; a partial
  /// trailing frame is discarded by the server.
  void Abort();

 private:
  explicit FrameClient(Socket socket) : socket_(std::move(socket)) {}

  Socket socket_;
};

}  // namespace net
}  // namespace ldpm

#endif  // LDPM_NET_FRAME_CLIENT_H_
