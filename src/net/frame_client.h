// Client side of the network ingest stream: connects to a
// net::IngestServer, streams collection frames, and reads the server's
// close reply.
//
// Two modes share the API (see net/protocol.h for the wire formats):
//
//  - One-shot (Connect(address, port)): a thin framing layer over one
//    blocking socket. Callers bring their own wire batches exactly as they
//    would hand them to Collector::IngestFrames, and the kernel's TCP flow
//    control is the only queue: a saturated server makes Send block,
//    pushing the backpressure all the way into the producer. Any transport
//    failure kills the stream — the caller owns recovery.
//
//  - Resumable (Connect(address, port, options) with options.resume): the
//    client opens a v2 session named by a token, buffers every sent frame
//    until the server acks it, and on any transport failure reconnects
//    with capped-exponential-backoff-plus-jitter, replaying exactly the
//    frames the server's resume offset says were never routed. Whole
//    frames are the ingest unit and the server's offsets are byte-precise,
//    so a stream delivered through any number of connection drops routes
//    each frame exactly once. Server verdicts (rejected stream, shed,
//    unknown collection) are never retried — only transport failures
//    without a verdict are.
//
// All operations honor the configured connect/send/recv deadlines, so a
// stalled or half-open peer surfaces as DeadlineExceeded instead of a hang.

#ifndef LDPM_NET_FRAME_CLIENT_H_
#define LDPM_NET_FRAME_CLIENT_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/status.h"
#include "net/reply_parser.h"
#include "net/socket.h"

namespace ldpm {
namespace net {

/// Reconnect/backoff schedule for resumable streams: attempt k (k >= 1)
/// sleeps initial_backoff * multiplier^(k-1), capped at max_backoff, then
/// scaled by a uniform factor in [1 - jitter, 1 + jitter] so a fleet of
/// clients dropped by one server event does not reconnect in lockstep.
struct RetryPolicy {
  /// Total attempts per operation (first try included); <= 1 disables
  /// retry.
  int max_attempts = 5;
  std::chrono::milliseconds initial_backoff{50};
  std::chrono::milliseconds max_backoff{2000};
  double multiplier = 2.0;
  /// Fractional jitter in [0, 1].
  double jitter = 0.2;
  /// Seed for the jitter PRNG; 0 derives one from the session token.
  uint64_t seed = 0;
};

struct FrameClientOptions {
  /// Deadline for each TCP connect (0 = block indefinitely).
  std::chrono::milliseconds connect_timeout{5000};
  /// Deadline for each whole-frame send against a stalled peer.
  std::chrono::milliseconds send_timeout{30000};
  /// Deadline for each wait on a server ack or final reply.
  std::chrono::milliseconds recv_timeout{30000};
  RetryPolicy retry;
  /// True: v2 resumable session (buffer + replay). False: v1 one-shot with
  /// the deadlines above but no retry beyond the initial connect.
  bool resume = true;
  /// Session token; 0 picks a random one (session_token() reads it back).
  uint64_t session_token = 0;
  /// Pause sends once this many stream bytes are unacked, waiting for acks
  /// (bounds the replay buffer). 0 = unbounded.
  size_t max_unacked_bytes = 64u << 20;
};

// StreamReply — the server's close reply, decoded — lives in
// net/reply_parser.h next to the record parser that produces it.

/// One logical ingest stream (see the file comment). Move-only; not
/// thread-safe — one streaming thread per client.
class FrameClient {
 public:
  FrameClient() = default;
  FrameClient(FrameClient&&) = default;
  FrameClient& operator=(FrameClient&&) = default;

  /// One-shot v1 stream: connects (blocking, no deadline, no retry) and
  /// sends the protocol preamble. The original API, byte-compatible.
  static StatusOr<FrameClient> Connect(const std::string& address,
                                       uint16_t port);

  /// Deadline- and retry-aware connect; options.resume selects the
  /// resumable v2 session protocol. The connect itself retries transport
  /// failures per options.retry.
  static StatusOr<FrameClient> Connect(const std::string& address,
                                       uint16_t port,
                                       FrameClientOptions options);

  bool connected() const { return socket_.valid(); }

  /// Frames `payload` (a wire batch, possibly empty) for `collection_id`
  /// and streams it. Blocks while the server applies backpressure. On a
  /// resumable stream this also absorbs acks, enforces the unacked-byte
  /// cap, and transparently reconnects + replays on transport failure; a
  /// server verdict (error reply) is returned as-is and ends the stream.
  Status SendFrame(std::string_view collection_id, const uint8_t* payload,
                   size_t payload_size);
  Status SendFrame(std::string_view collection_id,
                   const std::vector<uint8_t>& payload);

  /// Streams pre-framed stream bytes verbatim (a concatenation of
  /// collection frames, e.g. a spooled mux file). One-shot streams pass
  /// anything through (the server rejects violations with a byte-precise
  /// error); resumable streams require whole frames — replay is
  /// frame-granular — and reject a partial trailing frame client-side.
  Status SendBytes(const uint8_t* data, size_t size);

  /// Marks end-of-stream (half-close), waits for the server to absorb
  /// everything, and returns its decoded reply. On a resumable stream this
  /// retries through transport failures until a verdict arrives or
  /// attempts run out. The connection is done afterwards.
  StatusOr<StreamReply> Finish();

  /// Hard-closes without end-of-stream — the "client died mid-stream"
  /// path. Whole frames already received stay ingested; a partial
  /// trailing frame is discarded by the server.
  void Abort();

  /// The v2 session token in use (0 on one-shot streams).
  uint64_t session_token() const { return session_token_; }
  /// Successful reconnects after the initial connect.
  uint64_t reconnects() const { return reconnects_; }
  /// Frames retransmitted during resume (each counted per retransmission).
  uint64_t frames_replayed() const { return frames_replayed_; }
  /// Stream bytes sent but not yet acked (resumable streams).
  uint64_t unacked_bytes() const { return next_offset_ - acked_offset_; }

 private:
  explicit FrameClient(Socket socket) : socket_(std::move(socket)) {}

  // --- resumable-mode machinery (all no-ops in one-shot mode) ---
  Status EnsureConnected();
  Status Handshake();
  Status TransmitPending();
  Status PumpWithRetry();
  Status PumpOnce();
  Status FinishOnce();
  Status AbsorbReplyBytes(const uint8_t* data, size_t size);
  Status PollAcksNonBlocking();
  Status WaitForReply(std::chrono::milliseconds timeout);
  void TrySalvageVerdict();
  void TrimAcked();
  Status AppendPendingFrame(std::vector<uint8_t> frame);
  std::chrono::milliseconds BackoffFor(int completed_attempts);
  uint64_t NextRand();
  void DropConnection();

  Socket socket_;
  FrameClientOptions options_;
  bool resume_ = false;
  bool finished_ = false;
  std::string address_;
  uint16_t port_ = 0;
  uint64_t session_token_ = 0;
  uint64_t rng_state_ = 0;

  /// Sent-but-unacked whole frames, oldest first; pending_base_ is the
  /// session-stream offset of the front frame's first byte.
  std::deque<std::vector<uint8_t>> pending_;
  uint64_t pending_base_ = 0;
  /// Session offset one past the last appended frame.
  uint64_t next_offset_ = 0;
  /// Session offset transmitted on the *current* connection (frame-aligned).
  uint64_t sent_offset_ = 0;
  /// Highest server-acked session offset.
  uint64_t acked_offset_ = 0;
  /// High-water transmitted offset across all connections (replay stats).
  uint64_t high_water_ = 0;

  /// Decodes the server's reply records (acks can split across reads);
  /// reset on reconnect — a new connection starts a new reply stream.
  StreamReplyParser reply_parser_;
  /// Set once the server's final ok/error record arrives.
  std::optional<StreamReply> final_reply_;

  uint64_t connects_ = 0;
  uint64_t reconnects_ = 0;
  uint64_t frames_replayed_ = 0;
};

}  // namespace net
}  // namespace ldpm

#endif  // LDPM_NET_FRAME_CLIENT_H_
