// Incremental decoder for the server's reply-record stream.
//
// On a v2 resumable connection the server talks back to the client in
// self-delimiting records (net/protocol.h):
//
//   ack    0x03 + u64 acked session offset
//   ok     0x00 + u64 frames routed + u64 bytes routed   (final)
//   error  0x01 + u64 stream offset + u16 L + L message  (final)
//
// TCP segments those records arbitrarily, so the client may receive half
// an ack in one read and the rest three reads later. StreamReplyParser is
// the pure, socket-free state machine that makes the decode independent
// of segmentation: feed it whatever bytes arrived, in any split, and it
// consumes exactly the complete records, buffering a partial tail.
//
// Pulled out of FrameClient both so the decode is testable byte-by-byte
// and because these are outside bytes: this is the seam the
// fuzz_reply_stream harness drives (differentially — one-shot feed vs.
// per-byte feed must agree exactly).
//
// Not thread-safe; owned by a single FrameClient streaming thread.

#ifndef LDPM_NET_REPLY_PARSER_H_
#define LDPM_NET_REPLY_PARSER_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "core/status.h"

namespace ldpm {
namespace net {

/// The server's close reply, decoded (see net/protocol.h).
struct StreamReply {
  /// OK for a fully acked stream; otherwise the server's error, with the
  /// byte-precise stream offset below.
  Status status;
  /// On error: offset of the first unconsumed frame byte (counted from
  /// after the preamble; session-absolute on resumable streams) —
  /// everything before it is ingested.
  uint64_t stream_offset = 0;
  /// On success: whole frames / frame bytes the server routed.
  uint64_t frames_routed = 0;
  uint64_t bytes_routed = 0;
};

/// The reply-record state machine (see file comment).
class StreamReplyParser {
 public:
  /// Absorbs `size` received bytes and decodes every record they
  /// complete; a record split across Feed calls is buffered until its
  /// remainder arrives. Returns InvalidArgument on an unknown reply code,
  /// naming its offset in the connection's reply stream; the parser stays
  /// poisoned afterwards (further Feeds return the same error without
  /// consuming anything — the stream cannot be resynchronized).
  Status Feed(const uint8_t* data, size_t size);

  /// Highest acked session offset decoded so far (never decreases; a
  /// final ok's bytes_routed counts as an ack of everything).
  uint64_t acked_offset() const { return acked_offset_; }

  /// The final ok/error record, once one has arrived. An error reply
  /// carries status InvalidArgument("server rejected stream at byte
  /// <offset>: <message>"); an ok reply carries status OK and the routed
  /// counters.
  const std::optional<StreamReply>& final_reply() const {
    return final_reply_;
  }

  /// Bytes buffered awaiting the remainder of a split record.
  size_t buffered_bytes() const { return buffer_.size(); }

  /// Forgets buffered bytes, the poison, and the stream offset — the
  /// reconnect reset (a new connection starts a new reply stream).
  /// Decoded facts survive: acks are session-absolute and a verdict ends
  /// the stream no matter which connection delivered it.
  void Reset();

 private:
  std::vector<uint8_t> buffer_;
  /// Bytes consumed from this connection's reply stream — the error
  /// anchor for an unknown code.
  uint64_t stream_offset_ = 0;
  uint64_t acked_offset_ = 0;
  std::optional<StreamReply> final_reply_;
  Status error_ = Status::OK();
};

}  // namespace net
}  // namespace ldpm

#endif  // LDPM_NET_REPLY_PARSER_H_
