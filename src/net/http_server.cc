#include "net/http_server.h"

#include <utility>

namespace ldpm {
namespace net {

namespace {

/// Extracts method and path+query from "METHOD SP TARGET SP VERSION...".
/// Returns false on anything that does not parse as a request line.
bool ParseRequestLine(std::string_view request, std::string_view& method,
                      std::string_view& target) {
  const size_t line_end = request.find("\r\n");
  std::string_view line =
      line_end == std::string_view::npos ? request : request.substr(0, line_end);
  const size_t sp1 = line.find(' ');
  if (sp1 == std::string_view::npos) return false;
  const size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos) return false;
  method = line.substr(0, sp1);
  target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  return !method.empty() && !target.empty();
}

}  // namespace

bool ParseHttpRequestHead(std::string_view head, HttpRequest* out) {
  std::string_view method, target;
  if (!ParseRequestLine(head, method, target)) return false;
  out->method = std::string(method);
  const size_t q = target.find('?');
  out->path = std::string(target.substr(0, q));
  if (q != std::string_view::npos) {
    out->query = std::string(target.substr(q + 1));
  } else {
    out->query.clear();
  }
  return !out->path.empty();
}

std::optional<std::string> HttpRequest::Param(std::string_view key) const {
  std::string_view rest = query;
  while (!rest.empty()) {
    const size_t amp = rest.find('&');
    std::string_view pair =
        amp == std::string_view::npos ? rest : rest.substr(0, amp);
    rest = amp == std::string_view::npos ? std::string_view()
                                         : rest.substr(amp + 1);
    const size_t eq = pair.find('=');
    const std::string_view name =
        eq == std::string_view::npos ? pair : pair.substr(0, eq);
    if (name == key) {
      return eq == std::string_view::npos
                 ? std::string()
                 : std::string(pair.substr(eq + 1));
    }
  }
  return std::nullopt;
}

std::string_view HttpReasonPhrase(int code) {
  switch (code) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Status";
  }
}

std::string RenderHttpResponse(const HttpResponse& response) {
  std::string out = "HTTP/1.1 " + std::to_string(response.code) + " ";
  out += HttpReasonPhrase(response.code);
  out += "\r\nContent-Type: ";
  out += response.content_type;
  out += "\r\nContent-Length: " + std::to_string(response.body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += response.body;
  return out;
}

HttpServer::HttpServer(HttpHandler handler, const HttpServerOptions& options)
    : handler_(std::move(handler)), options_(options) {}

StatusOr<std::unique_ptr<HttpServer>> HttpServer::Start(
    HttpHandler handler, const HttpServerOptions& options) {
  if (handler == nullptr) {
    return Status::InvalidArgument("HttpServer: handler must not be null");
  }
  if (options.max_request_bytes == 0) {
    return Status::InvalidArgument("HttpServer: max_request_bytes must be > 0");
  }
  auto listener =
      Socket::Listen(options.bind_address, options.port, options.accept_backlog);
  if (!listener.ok()) return listener.status();
  auto port = listener->local_port();
  if (!port.ok()) return port.status();
  std::unique_ptr<HttpServer> server(
      new HttpServer(std::move(handler), options));
  server->listener_ = *std::move(listener);
  server->port_ = *port;
  server->serve_thread_ =
      std::thread([raw = server.get()] { raw->ServeLoop(); });
  return server;
}

HttpServer::~HttpServer() { Stop(); }

void HttpServer::Stop() {
  core::MutexLock stop_lock(stop_mu_);
  if (stopped_) return;
  stopping_.store(true, std::memory_order_release);
  (void)listener_.Shutdown();
  {
    // Wake a serve blocked reading a stalled client's request.
    core::MutexLock lock(active_mu_);
    if (active_ != nullptr) (void)active_->Shutdown();
  }
  if (serve_thread_.joinable()) serve_thread_.join();
  listener_.Close();
  stopped_ = true;
}

void HttpServer::ServeLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    auto accepted = listener_.Accept();
    if (!accepted.ok()) {
      if (stopping_.load(std::memory_order_acquire)) return;
      continue;  // transient accept failure; the listener persists
    }
    ServeOne(*std::move(accepted));
  }
}

void HttpServer::ServeOne(Socket socket) {
  {
    core::MutexLock lock(active_mu_);
    active_ = &socket;
  }
  // Read until the end of the request head (bodies are never read: the
  // plumbing is GET-only), a cap, an idle deadline, EOF, or stop. Bytes
  // past the first head terminator — a pipelined second request — are
  // collected but ignored; this server answers one request per
  // connection and closes.
  std::string request;
  uint8_t chunk[1024];
  bool complete = false;
  bool timed_out = false;
  bool oversized = false;
  while (!stopping_.load(std::memory_order_acquire)) {
    if (request.size() >= options_.max_request_bytes) {
      oversized = true;
      break;
    }
    auto n = options_.idle_timeout.count() > 0
                 ? socket.ReadSome(chunk, sizeof(chunk), options_.idle_timeout)
                 : socket.ReadSome(chunk, sizeof(chunk));
    if (!n.ok()) {
      timed_out = n.status().code() == StatusCode::kDeadlineExceeded;
      break;
    }
    if (*n == 0) break;  // EOF
    request.append(reinterpret_cast<const char*>(chunk), *n);
    if (request.find("\r\n\r\n") != std::string::npos ||
        request.find("\n\n") != std::string::npos) {
      complete = true;
      break;
    }
  }

  HttpResponse response;
  HttpRequest parsed;
  if (oversized) {
    response = {400, "text/plain", "request too large\n"};
  } else if (timed_out) {
    response = {408, "text/plain", "request timed out\n"};
  } else if (!complete || !ParseHttpRequestHead(request, &parsed)) {
    response = {400, "text/plain", "malformed request\n"};
  } else if (parsed.method != "GET") {
    response = {405, "text/plain", "only GET is supported\n"};
  } else {
    response = handler_(parsed);
  }
  const std::string rendered = RenderHttpResponse(response);
  (void)socket.WriteAll(reinterpret_cast<const uint8_t*>(rendered.data()),
                        rendered.size());
  requests_served_.fetch_add(1, std::memory_order_relaxed);
  if (options_.requests_counter != nullptr) {
    options_.requests_counter->Increment();
  }
  {
    core::MutexLock lock(active_mu_);
    active_ = nullptr;
  }
  (void)socket.Shutdown();
}

}  // namespace net
}  // namespace ldpm
