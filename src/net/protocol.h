// The network ingest stream protocol shared by net::IngestServer and
// net::FrameClient (see docs/wire-format.md, "Network stream framing").
//
// A connection is one uni-directional frame stream plus a one-shot reply:
//
//   client -> server:  8-byte preamble ("LDPMNET" + version byte 0x01),
//                      then a concatenation of collection frames
//                      (protocols/wire.h), then shutdown(SHUT_WR).
//   server -> client:  one reply record once the stream ends (cleanly or
//                      not), then close:
//
//     ok    :=  u8 0x00 | u64 frames_routed | u64 bytes_routed
//     error :=  u8 0x01 | u64 stream_offset | u16 message_length
//               | message bytes
//
//   All integers little-endian. `stream_offset` is the byte offset of the
//   first unconsumed byte, counted from the first frame byte after the
//   preamble — frames before it are ingested and stay ingested; the
//   offset is byte-precise so a spooling client can resync or replay.
//
// The server may also reply with an error and close mid-stream (unknown
// collection id, oversized frame, overload shedding, server stop); the
// client then sees its sends fail or its Finish() read the error record.

#ifndef LDPM_NET_PROTOCOL_H_
#define LDPM_NET_PROTOCOL_H_

#include <cstddef>
#include <cstdint>

namespace ldpm {
namespace net {

/// The 8 bytes every connection must open with: 7 magic bytes naming the
/// protocol plus one version byte. Distinct from the checkpoint file magic
/// ("LDPMCKPT") so a file accidentally piped at the port is rejected.
inline constexpr uint8_t kPreamble[8] = {'L', 'D', 'P', 'M',
                                         'N', 'E', 'T', 0x01};
inline constexpr size_t kPreambleBytes = sizeof(kPreamble);

/// Reply status bytes.
inline constexpr uint8_t kReplyOk = 0x00;
inline constexpr uint8_t kReplyError = 0x01;

/// Longest error message a reply carries (the u16 length prefix's range;
/// longer messages are truncated by the server).
inline constexpr size_t kMaxReplyMessageBytes = 0xFFFF;

}  // namespace net
}  // namespace ldpm

#endif  // LDPM_NET_PROTOCOL_H_
