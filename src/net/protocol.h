// The network ingest stream protocol shared by net::IngestServer and
// net::FrameClient (see docs/wire-format.md, "Network stream framing").
//
// Two protocol versions share the 8-byte preamble ("LDPMNET" + version):
//
// Version 1 — one-shot stream (the original protocol):
//
//   client -> server:  8-byte preamble ("LDPMNET" + 0x01), then a
//                      concatenation of collection frames
//                      (protocols/wire.h), then shutdown(SHUT_WR).
//   server -> client:  one reply record once the stream ends (cleanly or
//                      not), then close:
//
//     ok    :=  u8 0x00 | u64 frames_routed | u64 bytes_routed
//     error :=  u8 0x01 | u64 stream_offset | u16 message_length
//               | message bytes
//
// Version 2 — resumable session stream (exactly-once under churn):
//
//   client -> server:  8-byte preamble ("LDPMNET" + 0x02), then a u64
//                      session token (nonzero, client-chosen, stable
//                      across this logical stream's reconnects).
//   server -> client:  hello := u8 0x02 | u64 resume_offset — the session
//                      stream bytes the server has already routed (0 for
//                      a new session). The client resumes its frame
//                      stream exactly there, replaying buffered frames
//                      the server never routed and nothing else.
//   client -> server:  collection frames continuing the session stream at
//                      resume_offset, then shutdown(SHUT_WR).
//   server -> client:  during the stream, ack records after each routing
//                      round:  ack := u8 0x03 | u64 acked_offset
//                      (session-absolute routed bytes, monotone); then
//                      the final ok/error record as in v1, with all
//                      offsets/counters session-absolute.
//
//   All integers little-endian. `stream_offset` is the byte offset of the
//   first unconsumed byte of the (session) frame stream — frames before
//   it are ingested and stay ingested; the offset is byte-precise so a
//   client can resync or replay. Whole frames are the ingest unit, so
//   every acked offset lands on a frame boundary. Session state lives in
//   server memory: it survives connection churn (the failure mode it
//   exists for), not server restarts — after a restart the checkpoint is
//   the recovery line, and sessions start over at offset 0.
//
// The server may also reply with an error and close mid-stream (unknown
// collection id, oversized frame, overload shedding, idle reap, server
// stop); the client then sees its sends fail or its reply read surface
// the error record.

#ifndef LDPM_NET_PROTOCOL_H_
#define LDPM_NET_PROTOCOL_H_

#include <cstddef>
#include <cstdint>

namespace ldpm {
namespace net {

/// The protocol magic: 7 bytes naming the protocol. Distinct from the
/// checkpoint file magic ("LDPMCKPT") so a file accidentally piped at the
/// port is rejected.
inline constexpr uint8_t kPreambleMagic[7] = {'L', 'D', 'P', 'M',
                                              'N', 'E', 'T'};

/// Protocol versions (the 8th preamble byte).
inline constexpr uint8_t kVersionOneShot = 0x01;
inline constexpr uint8_t kVersionResume = 0x02;

/// The legacy 8-byte v1 preamble, kept for one-shot clients.
inline constexpr uint8_t kPreamble[8] = {'L', 'D', 'P', 'M',
                                         'N', 'E', 'T', kVersionOneShot};
inline constexpr size_t kPreambleBytes = sizeof(kPreamble);

/// Reply/record status bytes.
inline constexpr uint8_t kReplyOk = 0x00;
inline constexpr uint8_t kReplyError = 0x01;
inline constexpr uint8_t kReplyHello = 0x02;  ///< v2: u64 resume offset.
inline constexpr uint8_t kReplyAck = 0x03;    ///< v2: u64 acked offset.

/// Longest error message a reply carries (the u16 length prefix's range;
/// longer messages are truncated by the server).
inline constexpr size_t kMaxReplyMessageBytes = 0xFFFF;

}  // namespace net
}  // namespace ldpm

#endif  // LDPM_NET_PROTOCOL_H_
