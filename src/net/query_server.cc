#include "net/query_server.h"

#include <cinttypes>
#include <cstdio>
#include <utility>
#include <vector>

#include "protocols/factory.h"

namespace ldpm {
namespace net {

namespace {

/// Renders a double with 17 significant digits — enough for the decimal
/// text to round-trip the exact IEEE value, which the bitwise-equality
/// smoke diffs (server_demo --query) rely on.
std::string JsonDouble(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

std::string JsonString(const std::string& value) {
  std::string out = "\"";
  for (char c : value) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  out += "\"";
  return out;
}

HttpResponse Json(int code, std::string body) {
  return {code, "application/json", std::move(body)};
}

HttpResponse BadRequest(std::string message) {
  return {400, "text/plain", std::move(message) + "\n"};
}

HttpResponse NotFound(std::string message) {
  return {404, "text/plain", std::move(message) + "\n"};
}

/// Parses "0,2,5" into ascending-unique attribute ids and the selector
/// mask. On failure returns the byte-precise 400 via `error`.
bool ParseAttrs(const std::string& raw, int d, std::vector<int>& attrs,
                uint64_t& beta, HttpResponse& error) {
  attrs.clear();
  beta = 0;
  if (raw.empty()) {
    error = BadRequest("attrs: expected comma-separated attribute ids");
    return false;
  }
  size_t pos = 0;
  while (pos <= raw.size()) {
    const size_t comma = raw.find(',', pos);
    const std::string token =
        raw.substr(pos, comma == std::string::npos ? std::string::npos
                                                   : comma - pos);
    pos = comma == std::string::npos ? raw.size() + 1 : comma + 1;
    if (token.empty() || token.find_first_not_of("0123456789") !=
                             std::string::npos) {
      error = BadRequest("attrs: expected comma-separated attribute ids, got \"" +
                         token + "\"");
      return false;
    }
    if (token.size() > 9) {
      error = BadRequest("attrs: attribute " + token + " out of range [0, " +
                         std::to_string(d) + ")");
      return false;
    }
    const int attribute = std::stoi(token);
    if (attribute >= d) {
      error = BadRequest("attrs: attribute " + std::to_string(attribute) +
                         " out of range [0, " + std::to_string(d) + ")");
      return false;
    }
    const uint64_t bit = uint64_t{1} << attribute;
    if (beta & bit) {
      error = BadRequest("attrs: duplicate attribute " +
                         std::to_string(attribute));
      return false;
    }
    beta |= bit;
    attrs.push_back(attribute);
  }
  return true;
}

}  // namespace

QueryServer::QueryServer(engine::Collector* collector,
                         const QueryServerOptions& options)
    : collector_(collector), options_(options) {}

StatusOr<std::unique_ptr<QueryServer>> QueryServer::Start(
    engine::Collector* collector, const QueryServerOptions& options) {
  if (collector == nullptr) {
    return Status::InvalidArgument("QueryServer: collector must not be null");
  }
  std::unique_ptr<QueryServer> server(new QueryServer(collector, options));
  HttpServerOptions http_options;
  http_options.bind_address = options.bind_address;
  http_options.port = options.port;
  http_options.accept_backlog = options.accept_backlog;
  http_options.max_request_bytes = options.max_request_bytes;
  http_options.idle_timeout = options.idle_timeout;
  http_options.requests_counter = collector->metrics()->GetCounter(
      "ldpm_query_http_requests_total",
      "Requests the query endpoint answered (any status)");
  auto http = HttpServer::Start(
      [raw = server.get()](const HttpRequest& request) {
        return raw->Handle(request);
      },
      http_options);
  if (!http.ok()) return http.status();
  server->http_ = *std::move(http);
  return server;
}

StatusOr<query::MarginalCache*> QueryServer::CacheFor(
    const std::string& collection) {
  {
    core::MutexLock lock(caches_mu_);
    auto it = caches_.find(collection);
    if (it != caches_.end()) return it->second.get();
  }
  // Built outside the lock: Create validates the collection against the
  // collector and precomputes the full selector set, and one slow
  // first-touch must not block queries against every other collection.
  auto cache = query::MarginalCache::Create(collector_, collection,
                                            options_.cache);
  if (!cache.ok()) return cache.status();
  core::MutexLock lock(caches_mu_);
  // Two first-touch requests can race the build; emplace keeps the winner
  // and both callers serve from the installed instance.
  auto [it, inserted] = caches_.emplace(collection, *std::move(cache));
  (void)inserted;
  return it->second.get();
}

HttpResponse QueryServer::Handle(const HttpRequest& request) {
  if (request.path == "/v1/marginal") return HandleMarginal(request);
  if (request.path == "/v1/model") return HandleModel(request);
  if (request.path == "/v1/collections") return HandleCollections();
  if (request.path == "/healthz") return {200, "text/plain", "ok\n"};
  return NotFound(
      "unknown path; try /v1/marginal, /v1/model, /v1/collections, or "
      "/healthz");
}

HttpResponse QueryServer::HandleMarginal(const HttpRequest& request) {
  const auto collection = request.Param("collection");
  if (!collection.has_value() || collection->empty()) {
    return BadRequest("missing required parameter: collection");
  }
  auto cache = CacheFor(*collection);
  if (!cache.ok()) {
    if (cache.status().code() == StatusCode::kNotFound) {
      return NotFound("unknown collection: " + *collection);
    }
    return BadRequest(cache.status().message());
  }
  const auto attrs_param = request.Param("attrs");
  if (!attrs_param.has_value()) {
    return BadRequest("missing required parameter: attrs");
  }
  std::vector<int> attrs;
  uint64_t beta = 0;
  HttpResponse error;
  if (!ParseAttrs(*attrs_param, (*cache)->dimensions(), attrs, beta, error)) {
    return error;
  }
  if (static_cast<int>(attrs.size()) > (*cache)->max_order()) {
    return BadRequest("attrs: order " + std::to_string(attrs.size()) +
                      " exceeds cached maximum " +
                      std::to_string((*cache)->max_order()));
  }
  auto answer = (*cache)->Marginal(beta);
  if (!answer.ok()) return BadRequest(answer.status().message());

  std::string body = "{\"collection\":" + JsonString(*collection);
  body += ",\"protocol\":\"";
  body += ProtocolKindName((*cache)->kind());
  body += "\"";
  body += ",\"d\":" + std::to_string(answer->table.dimensions());
  body += ",\"watermark\":" + std::to_string(answer->watermark);
  body += ",\"epoch\":" + std::to_string(answer->epoch);
  body += std::string(",\"stale\":") + (answer->stale ? "true" : "false");
  body += ",\"attrs\":[";
  for (size_t i = 0; i < attrs.size(); ++i) {
    if (i != 0) body += ",";
    body += std::to_string(attrs[i]);
  }
  body += "],\"beta\":" + std::to_string(beta);
  body += ",\"order\":" + std::to_string(attrs.size());
  body += ",\"cells\":[";
  for (uint64_t i = 0; i < answer->table.size(); ++i) {
    if (i != 0) body += ",";
    body += JsonDouble(answer->table.at_compact(i));
  }
  body += "]}\n";
  return Json(200, std::move(body));
}

HttpResponse QueryServer::HandleModel(const HttpRequest& request) {
  const auto collection = request.Param("collection");
  if (!collection.has_value() || collection->empty()) {
    return BadRequest("missing required parameter: collection");
  }
  auto cache = CacheFor(*collection);
  if (!cache.ok()) {
    if (cache.status().code() == StatusCode::kNotFound) {
      return NotFound("unknown collection: " + *collection);
    }
    return BadRequest(cache.status().message());
  }
  auto snapshot = (*cache)->Get();
  if (!snapshot.ok()) return BadRequest(snapshot.status().message());
  auto model = (*snapshot)->Model();
  if (!model.ok()) return BadRequest(model.status().message());

  const ChowLiuTree& tree = (*model)->tree();
  std::string body = "{\"collection\":" + JsonString(*collection);
  body += ",\"d\":" + std::to_string((*model)->dimensions());
  body += ",\"watermark\":" + std::to_string((*snapshot)->watermark());
  body += ",\"epoch\":" + std::to_string((*snapshot)->epoch());
  body += ",\"total_mutual_information\":" +
          JsonDouble(tree.total_mutual_information);
  body += ",\"edges\":[";
  for (size_t i = 0; i < tree.edges.size(); ++i) {
    if (i != 0) body += ",";
    body += "{\"a\":" + std::to_string(tree.edges[i].a);
    body += ",\"b\":" + std::to_string(tree.edges[i].b);
    body += ",\"mutual_information\":" +
            JsonDouble(tree.edges[i].mutual_information) + "}";
  }
  body += "],\"cpts\":[";
  const auto cpts = (*model)->Cpts();
  for (size_t i = 0; i < cpts.size(); ++i) {
    if (i != 0) body += ",";
    body += "{\"attribute\":" + std::to_string(cpts[i].attribute);
    body += ",\"parent\":" + std::to_string(cpts[i].parent);
    if (cpts[i].parent < 0) {
      body += ",\"p1\":" + JsonDouble(cpts[i].p_root);
    } else {
      body += ",\"p1_given_parent\":[" + JsonDouble(cpts[i].p_given_parent[0]) +
              "," + JsonDouble(cpts[i].p_given_parent[1]) + "]";
    }
    body += "}";
  }
  body += "]}\n";
  return Json(200, std::move(body));
}

HttpResponse QueryServer::HandleCollections() {
  std::string body = "{\"collections\":[";
  bool first = true;
  for (const std::string& id : collector_->CollectionIds()) {
    auto handle = collector_->Handle(id);
    if (!handle.ok()) continue;  // unregistered between list and lookup
    if (!first) body += ",";
    first = false;
    body += "{\"id\":" + JsonString(id);
    body += ",\"protocol\":\"";
    body += ProtocolKindName(handle->kind());
    body += "\",\"d\":" + std::to_string(handle->config().d);
    body += ",\"k\":" + std::to_string(handle->config().k) + "}";
  }
  body += "]}\n";
  return Json(200, std::move(body));
}

}  // namespace net
}  // namespace ldpm
