#include "net/stats_server.h"

#include <utility>

namespace ldpm {
namespace net {

namespace {

std::string HttpResponse(int code, std::string_view reason,
                         std::string_view content_type,
                         std::string_view body) {
  std::string out = "HTTP/1.1 " + std::to_string(code) + " ";
  out += reason;
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: " + std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

/// Extracts the request path from "METHOD SP PATH SP VERSION...". Returns
/// false on anything that does not parse as a request line.
bool ParseRequestLine(std::string_view request, std::string_view& method,
                      std::string_view& path) {
  const size_t line_end = request.find("\r\n");
  std::string_view line =
      line_end == std::string_view::npos ? request : request.substr(0, line_end);
  const size_t sp1 = line.find(' ');
  if (sp1 == std::string_view::npos) return false;
  const size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos) return false;
  method = line.substr(0, sp1);
  path = line.substr(sp1 + 1, sp2 - sp1 - 1);
  // Drop any query string: /stats?foo=1 serves /stats.
  const size_t query = path.find('?');
  if (query != std::string_view::npos) path = path.substr(0, query);
  return !method.empty() && !path.empty();
}

}  // namespace

StatsServer::StatsServer(obs::MetricsRegistry* registry,
                         const StatsServerOptions& options)
    : registry_(registry), options_(options) {}

StatusOr<std::unique_ptr<StatsServer>> StatsServer::Start(
    obs::MetricsRegistry* registry, const StatsServerOptions& options) {
  if (registry == nullptr) {
    return Status::InvalidArgument("StatsServer: registry must not be null");
  }
  if (options.max_request_bytes == 0) {
    return Status::InvalidArgument(
        "StatsServer: max_request_bytes must be > 0");
  }
  auto listener =
      Socket::Listen(options.bind_address, options.port, options.accept_backlog);
  if (!listener.ok()) return listener.status();
  auto port = listener->local_port();
  if (!port.ok()) return port.status();
  std::unique_ptr<StatsServer> server(new StatsServer(registry, options));
  server->listener_ = *std::move(listener);
  server->port_ = *port;
  server->requests_counter_ = registry->GetCounter(
      "ldpm_stats_requests_total", "Requests the /stats endpoint answered");
  server->serve_thread_ =
      std::thread([raw = server.get()] { raw->ServeLoop(); });
  return server;
}

StatsServer::~StatsServer() { Stop(); }

void StatsServer::Stop() {
  std::lock_guard<std::mutex> stop_lock(stop_mu_);
  if (stopped_) return;
  stopping_.store(true, std::memory_order_release);
  (void)listener_.Shutdown();
  {
    // Wake a serve blocked reading a stalled scraper's request.
    std::lock_guard<std::mutex> lock(active_mu_);
    if (active_ != nullptr) (void)active_->Shutdown();
  }
  if (serve_thread_.joinable()) serve_thread_.join();
  listener_.Close();
  stopped_ = true;
}

void StatsServer::ServeLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    auto accepted = listener_.Accept();
    if (!accepted.ok()) {
      if (stopping_.load(std::memory_order_acquire)) return;
      continue;  // transient accept failure; the listener persists
    }
    ServeOne(*std::move(accepted));
  }
}

void StatsServer::ServeOne(Socket socket) {
  {
    std::lock_guard<std::mutex> lock(active_mu_);
    active_ = &socket;
  }
  // Read until the end of the request headers (we never read a body: the
  // endpoint is GET-only), a cap, EOF, or stop.
  std::string request;
  uint8_t chunk[1024];
  bool complete = false;
  while (request.size() < options_.max_request_bytes &&
         !stopping_.load(std::memory_order_acquire)) {
    auto n = socket.ReadSome(chunk, sizeof(chunk));
    if (!n.ok() || *n == 0) break;
    request.append(reinterpret_cast<const char*>(chunk), *n);
    if (request.find("\r\n\r\n") != std::string::npos ||
        request.find("\n\n") != std::string::npos) {
      complete = true;
      break;
    }
  }

  std::string response;
  std::string_view method, path;
  if (!complete || !ParseRequestLine(request, method, path)) {
    response = HttpResponse(400, "Bad Request", "text/plain",
                            "malformed request\n");
  } else if (method != "GET") {
    response = HttpResponse(405, "Method Not Allowed", "text/plain",
                            "only GET is supported\n");
  } else if (path == "/stats" || path == "/metrics") {
    response = HttpResponse(200, "OK",
                            "text/plain; version=0.0.4; charset=utf-8",
                            registry_->TextExposition());
  } else if (path == "/healthz") {
    response = HttpResponse(200, "OK", "text/plain", "ok\n");
  } else {
    response = HttpResponse(404, "Not Found", "text/plain",
                            "unknown path; try /stats or /healthz\n");
  }
  (void)socket.WriteAll(reinterpret_cast<const uint8_t*>(response.data()),
                        response.size());
  requests_served_.fetch_add(1, std::memory_order_relaxed);
  if (requests_counter_ != nullptr) requests_counter_->Increment();
  {
    std::lock_guard<std::mutex> lock(active_mu_);
    active_ = nullptr;
  }
  (void)socket.Shutdown();
}

}  // namespace net
}  // namespace ldpm
