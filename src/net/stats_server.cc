#include "net/stats_server.h"

#include <utility>

namespace ldpm {
namespace net {

StatusOr<std::unique_ptr<StatsServer>> StatsServer::Start(
    obs::MetricsRegistry* registry, const StatsServerOptions& options) {
  if (registry == nullptr) {
    return Status::InvalidArgument("StatsServer: registry must not be null");
  }
  if (options.max_request_bytes == 0) {
    return Status::InvalidArgument(
        "StatsServer: max_request_bytes must be > 0");
  }
  HttpServerOptions http_options;
  http_options.bind_address = options.bind_address;
  http_options.port = options.port;
  http_options.accept_backlog = options.accept_backlog;
  http_options.max_request_bytes = options.max_request_bytes;
  http_options.idle_timeout = options.idle_timeout;
  http_options.requests_counter = registry->GetCounter(
      "ldpm_stats_requests_total", "Requests the /stats endpoint answered");
  auto http = HttpServer::Start(
      [registry](const HttpRequest& request) -> HttpResponse {
        if (request.path == "/stats" || request.path == "/metrics") {
          return {200, "text/plain; version=0.0.4; charset=utf-8",
                  registry->TextExposition()};
        }
        if (request.path == "/healthz") {
          return {200, "text/plain", "ok\n"};
        }
        return {404, "text/plain", "unknown path; try /stats or /healthz\n"};
      },
      http_options);
  if (!http.ok()) return http.status();
  return std::unique_ptr<StatsServer>(new StatsServer(*std::move(http)));
}

}  // namespace net
}  // namespace ldpm
