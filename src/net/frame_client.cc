#include "net/frame_client.h"

#include <algorithm>
#include <cstring>
#include <random>
#include <thread>
#include <utility>

#include "net/protocol.h"
#include "protocols/wire.h"

namespace ldpm {
namespace net {

namespace {

uint64_t ReadU64(const uint8_t* bytes) {
  uint64_t value = 0;
  for (int b = 0; b < 8; ++b) value |= uint64_t{bytes[b]} << (8 * b);
  return value;
}

void WriteU64(uint64_t value, uint8_t* bytes) {
  for (int b = 0; b < 8; ++b) bytes[b] = uint8_t(value >> (8 * b));
}

/// Transport failures worth a reconnect: the peer vanished (Unavailable),
/// stalled past a deadline (DeadlineExceeded), or closed without a verdict
/// (FailedPrecondition, the socket layer's clean-EOF/default category).
/// Everything else — server verdicts, protocol violations, bad arguments —
/// is final.
bool RetryableTransport(const Status& status) {
  switch (status.code()) {
    case StatusCode::kUnavailable:
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kFailedPrecondition:
      return true;
    default:
      return false;
  }
}

uint64_t RandomToken() {
  std::random_device rd;
  uint64_t token = (uint64_t{rd()} << 32) ^ rd();
  return token == 0 ? 1 : token;
}

Status AfterAttempts(Status status, int attempts) {
  if (attempts <= 1) return status;
  return Status(status.code(), status.message() + " (after " +
                                   std::to_string(attempts) + " attempts)");
}

}  // namespace

StatusOr<FrameClient> FrameClient::Connect(const std::string& address,
                                           uint16_t port) {
  // The original one-shot API: blocking connect, no deadlines, no retry.
  FrameClientOptions options;
  options.connect_timeout = std::chrono::milliseconds(0);
  options.send_timeout = std::chrono::milliseconds(0);
  options.recv_timeout = std::chrono::milliseconds(0);
  options.retry.max_attempts = 1;
  options.resume = false;
  return Connect(address, port, options);
}

StatusOr<FrameClient> FrameClient::Connect(const std::string& address,
                                           uint16_t port,
                                           FrameClientOptions options) {
  FrameClient client;
  client.options_ = options;
  client.resume_ = options.resume;
  client.address_ = address;
  client.port_ = port;
  if (client.resume_) {
    client.session_token_ =
        options.session_token != 0 ? options.session_token : RandomToken();
  }
  client.rng_state_ = options.retry.seed != 0
                          ? options.retry.seed
                          : (client.session_token_ | 1);
  const int attempts = std::max(1, options.retry.max_attempts);
  Status last;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) std::this_thread::sleep_for(client.BackoffFor(attempt));
    Status status = client.EnsureConnected();
    if (status.ok()) return std::move(client);
    if (!RetryableTransport(status)) return status;
    last = std::move(status);
    client.DropConnection();
  }
  return AfterAttempts(std::move(last), attempts);
}

Status FrameClient::EnsureConnected() {
  if (socket_.valid()) return Status::OK();
  auto socket = Socket::Connect(address_, port_, options_.connect_timeout);
  if (!socket.ok()) return socket.status();
  socket_ = *std::move(socket);
  reply_parser_.Reset();
  ++connects_;
  if (connects_ > 1) ++reconnects_;
  Status status = Handshake();
  if (!status.ok()) socket_.Close();
  return status;
}

Status FrameClient::Handshake() {
  if (!resume_) {
    return socket_.WriteAll(kPreamble, kPreambleBytes, options_.send_timeout);
  }
  uint8_t preamble[16];
  std::memcpy(preamble, kPreambleMagic, sizeof(kPreambleMagic));
  preamble[7] = kVersionResume;
  WriteU64(session_token_, preamble + 8);
  LDPM_RETURN_IF_ERROR(
      socket_.WriteAll(preamble, sizeof(preamble), options_.send_timeout));
  uint8_t code = 0;
  LDPM_RETURN_IF_ERROR(socket_.ReadExact(&code, 1, options_.recv_timeout));
  if (code == kReplyError) {
    // The server refused the session outright (e.g. overload shedding):
    // that is a verdict, decoded exactly like a final error reply.
    uint8_t header[10];
    LDPM_RETURN_IF_ERROR(
        socket_.ReadExact(header, sizeof(header), options_.recv_timeout));
    StreamReply reply;
    reply.stream_offset = ReadU64(header);
    const size_t message_size =
        static_cast<size_t>(header[8]) | static_cast<size_t>(header[9]) << 8;
    std::string message(message_size, '\0');
    LDPM_RETURN_IF_ERROR(
        socket_.ReadExact(reinterpret_cast<uint8_t*>(message.data()),
                          message_size, options_.recv_timeout));
    reply.status = Status::InvalidArgument(
        "server rejected stream at byte " +
        std::to_string(reply.stream_offset) + ": " + message);
    final_reply_ = std::move(reply);
    return final_reply_->status;
  }
  if (code != kReplyHello) {
    return Status::InvalidArgument(
        "FrameClient: expected hello record, got reply code " +
        std::to_string(code));
  }
  uint8_t offset_bytes[8];
  LDPM_RETURN_IF_ERROR(socket_.ReadExact(offset_bytes, sizeof(offset_bytes),
                                         options_.recv_timeout));
  const uint64_t resume_offset = ReadU64(offset_bytes);
  // The server's routed offset is authoritative; everything before it is
  // ingested and must never be resent, everything after it must be. It can
  // only fall behind our trimmed buffer if the server lost the session
  // (restart, eviction) — then replay is impossible and the stream is lost.
  if (resume_offset > next_offset_) {
    return Status::Internal(
        "FrameClient: server resume offset " + std::to_string(resume_offset) +
        " is past the " + std::to_string(next_offset_) + " bytes ever sent");
  }
  if (resume_offset < pending_base_) {
    return Status::Internal(
        "FrameClient: server resume offset " + std::to_string(resume_offset) +
        " precedes already-acked offset " + std::to_string(pending_base_) +
        " (session lost on server?); cannot replay");
  }
  // Whole frames are the ingest unit, so the offset must land on one of
  // our frame boundaries.
  uint64_t boundary = pending_base_;
  for (const auto& frame : pending_) {
    if (boundary >= resume_offset) break;
    boundary += frame.size();
  }
  if (boundary != resume_offset && resume_offset != next_offset_) {
    return Status::Internal("FrameClient: server resume offset " +
                            std::to_string(resume_offset) +
                            " is not on a frame boundary");
  }
  if (resume_offset > acked_offset_) {
    acked_offset_ = resume_offset;
    TrimAcked();
  }
  sent_offset_ = resume_offset;
  return Status::OK();
}

void FrameClient::DropConnection() { socket_.Close(); }

void FrameClient::TrimAcked() {
  while (!pending_.empty() &&
         pending_base_ + pending_.front().size() <= acked_offset_) {
    pending_base_ += pending_.front().size();
    pending_.pop_front();
  }
}

Status FrameClient::AbsorbReplyBytes(const uint8_t* data, size_t size) {
  // Decode is delegated to the pure StreamReplyParser; this shim applies
  // what it learned to the client's replay state. The parser's
  // acked_offset never decreases and Reset() preserves it, so a straight
  // max-merge is correct across reconnects.
  Status status = reply_parser_.Feed(data, size);
  if (reply_parser_.acked_offset() > acked_offset_) {
    acked_offset_ = reply_parser_.acked_offset();
    TrimAcked();
  }
  if (reply_parser_.final_reply().has_value() && !final_reply_) {
    final_reply_ = *reply_parser_.final_reply();
  }
  return status;
}

Status FrameClient::PollAcksNonBlocking() {
  uint8_t buf[4096];
  while (!final_reply_) {
    auto n = socket_.ReadAvailable(buf, sizeof(buf));
    if (!n.ok()) return n.status();
    if (*n == 0) return Status::OK();
    LDPM_RETURN_IF_ERROR(AbsorbReplyBytes(buf, *n));
  }
  return Status::OK();
}

Status FrameClient::WaitForReply(std::chrono::milliseconds timeout) {
  uint8_t buf[4096];
  auto n = socket_.ReadSome(buf, sizeof(buf), timeout);
  if (!n.ok()) return n.status();
  if (*n == 0) {
    return Status::FailedPrecondition(
        "recv: connection closed while waiting for server reply");
  }
  return AbsorbReplyBytes(buf, *n);
}

void FrameClient::TrySalvageVerdict() {
  // A failed send often means the server already shipped its error record
  // and closed; read it so the caller gets the verdict, not a retry storm.
  // Bounded (bytes and per-read deadline) because the peer may be gone.
  size_t total = 0;
  uint8_t buf[4096];
  while (!final_reply_ && total < (64u << 10)) {
    auto n = socket_.ReadSome(buf, sizeof(buf), std::chrono::milliseconds(250));
    if (!n.ok() || *n == 0) return;
    total += *n;
    if (!AbsorbReplyBytes(buf, *n).ok()) return;
  }
}

Status FrameClient::TransmitPending() {
  for (;;) {
    // Re-locate the next unsent frame each round: ack processing may have
    // trimmed the deque since the last iteration.
    uint64_t offset = pending_base_;
    size_t index = 0;
    while (index < pending_.size() &&
           offset + pending_[index].size() <= sent_offset_) {
      offset += pending_[index].size();
      ++index;
    }
    if (index == pending_.size()) return Status::OK();
    const std::vector<uint8_t>& frame = pending_[index];
    if (offset < high_water_) ++frames_replayed_;
    Status status =
        socket_.WriteAll(frame.data(), frame.size(), options_.send_timeout);
    if (!status.ok()) {
      TrySalvageVerdict();
      if (final_reply_ && !final_reply_->status.ok()) {
        return final_reply_->status;
      }
      return status;
    }
    sent_offset_ = offset + frame.size();
    high_water_ = std::max(high_water_, sent_offset_);
    LDPM_RETURN_IF_ERROR(PollAcksNonBlocking());
    if (final_reply_) {
      // A verdict mid-send ends the stream; ok-before-EOF is impossible,
      // so a non-error verdict here is itself a protocol violation.
      return final_reply_->status.ok()
                 ? Status::InvalidArgument(
                       "FrameClient: server sent ok reply mid-stream")
                 : final_reply_->status;
    }
  }
}

Status FrameClient::PumpOnce() {
  LDPM_RETURN_IF_ERROR(EnsureConnected());
  LDPM_RETURN_IF_ERROR(TransmitPending());
  while (options_.max_unacked_bytes > 0 && !final_reply_ &&
         next_offset_ - acked_offset_ > options_.max_unacked_bytes) {
    LDPM_RETURN_IF_ERROR(WaitForReply(options_.recv_timeout));
  }
  if (final_reply_ && !final_reply_->status.ok()) return final_reply_->status;
  return Status::OK();
}

Status FrameClient::PumpWithRetry() {
  const int attempts = std::max(1, options_.retry.max_attempts);
  Status last;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) std::this_thread::sleep_for(BackoffFor(attempt));
    Status status = PumpOnce();
    if (status.ok()) return status;
    if (!RetryableTransport(status) ||
        (final_reply_ && !final_reply_->status.ok())) {
      return status;
    }
    last = std::move(status);
    DropConnection();
  }
  return AfterAttempts(std::move(last), attempts);
}

Status FrameClient::AppendPendingFrame(std::vector<uint8_t> frame) {
  next_offset_ += frame.size();
  pending_.push_back(std::move(frame));
  return PumpWithRetry();
}

Status FrameClient::SendFrame(std::string_view collection_id,
                              const uint8_t* payload, size_t payload_size) {
  if (!resume_) {
    if (!connected()) {
      return Status::FailedPrecondition("FrameClient: not connected");
    }
    std::vector<uint8_t> frame;
    LDPM_RETURN_IF_ERROR(
        AppendCollectionFrame(collection_id, payload, payload_size, frame));
    return socket_.WriteAll(frame.data(), frame.size(),
                            options_.send_timeout);
  }
  if (finished_ || final_reply_) {
    return final_reply_ && !final_reply_->status.ok()
               ? final_reply_->status
               : Status::FailedPrecondition(
                     "FrameClient: stream already finished");
  }
  std::vector<uint8_t> frame;
  LDPM_RETURN_IF_ERROR(
      AppendCollectionFrame(collection_id, payload, payload_size, frame));
  return AppendPendingFrame(std::move(frame));
}

Status FrameClient::SendFrame(std::string_view collection_id,
                              const std::vector<uint8_t>& payload) {
  return SendFrame(collection_id, payload.data(), payload.size());
}

Status FrameClient::SendBytes(const uint8_t* data, size_t size) {
  if (!resume_) {
    if (!connected()) {
      return Status::FailedPrecondition("FrameClient: not connected");
    }
    return socket_.WriteAll(data, size, options_.send_timeout);
  }
  if (finished_ || final_reply_) {
    return final_reply_ && !final_reply_->status.ok()
               ? final_reply_->status
               : Status::FailedPrecondition(
                     "FrameClient: stream already finished");
  }
  // Replay is frame-granular, so a resumable stream only accepts whole
  // frames; split the buffer at frame boundaries and buffer each one.
  CollectionFrameReader reader(data, size);
  std::string_view id;
  const uint8_t* payload = nullptr;
  size_t payload_size = 0;
  size_t consumed = 0;
  while (reader.Next(id, payload, payload_size)) {
    std::vector<uint8_t> frame(data + reader.frame_offset(),
                               data + reader.frame_end_offset());
    consumed = reader.frame_end_offset();
    LDPM_RETURN_IF_ERROR(AppendPendingFrame(std::move(frame)));
  }
  LDPM_RETURN_IF_ERROR(reader.status());
  if (consumed != size) {
    return Status::InvalidArgument(
        "FrameClient: SendBytes on a resumable stream requires whole "
        "frames; trailing " +
        std::to_string(size - consumed) + " bytes are a partial frame");
  }
  return Status::OK();
}

Status FrameClient::FinishOnce() {
  LDPM_RETURN_IF_ERROR(EnsureConnected());
  Status status = TransmitPending();
  if (final_reply_) return Status::OK();
  if (!status.ok()) return status;
  LDPM_RETURN_IF_ERROR(socket_.ShutdownWrite());
  while (!final_reply_) {
    LDPM_RETURN_IF_ERROR(WaitForReply(options_.recv_timeout));
  }
  return Status::OK();
}

StatusOr<StreamReply> FrameClient::Finish() {
  if (!resume_) {
    if (!connected()) {
      return Status::FailedPrecondition("FrameClient: not connected");
    }
    LDPM_RETURN_IF_ERROR(socket_.ShutdownWrite());
    uint8_t code = 0;
    LDPM_RETURN_IF_ERROR(socket_.ReadExact(&code, 1, options_.recv_timeout));
    StreamReply reply;
    if (code == kReplyOk) {
      uint8_t counters[16];
      LDPM_RETURN_IF_ERROR(socket_.ReadExact(counters, sizeof(counters),
                                             options_.recv_timeout));
      reply.frames_routed = ReadU64(counters);
      reply.bytes_routed = ReadU64(counters + 8);
    } else if (code == kReplyError) {
      uint8_t header[10];
      LDPM_RETURN_IF_ERROR(
          socket_.ReadExact(header, sizeof(header), options_.recv_timeout));
      reply.stream_offset = ReadU64(header);
      const size_t message_size = static_cast<size_t>(header[8]) |
                                  static_cast<size_t>(header[9]) << 8;
      std::string message(message_size, '\0');
      LDPM_RETURN_IF_ERROR(
          socket_.ReadExact(reinterpret_cast<uint8_t*>(message.data()),
                            message_size, options_.recv_timeout));
      reply.status = Status::InvalidArgument(
          "server rejected stream at byte " +
          std::to_string(reply.stream_offset) + ": " + message);
    } else {
      return Status::InvalidArgument("FrameClient: unknown reply code " +
                                     std::to_string(code));
    }
    socket_.Close();
    return reply;
  }
  if (finished_) {
    return Status::FailedPrecondition("FrameClient: stream already finished");
  }
  const int attempts = std::max(1, options_.retry.max_attempts);
  Status last;
  for (int attempt = 0; attempt < attempts && !final_reply_; ++attempt) {
    if (attempt > 0) {
      DropConnection();
      std::this_thread::sleep_for(BackoffFor(attempt));
    }
    Status status = FinishOnce();
    if (final_reply_) break;
    if (!status.ok() && !RetryableTransport(status)) return status;
    if (!status.ok()) last = std::move(status);
  }
  if (!final_reply_) return AfterAttempts(std::move(last), attempts);
  finished_ = true;
  socket_.Close();
  return *final_reply_;
}

void FrameClient::Abort() {
  socket_.Close();
  pending_.clear();
  finished_ = true;
}

std::chrono::milliseconds FrameClient::BackoffFor(int completed_attempts) {
  const RetryPolicy& retry = options_.retry;
  double ms = static_cast<double>(retry.initial_backoff.count());
  for (int i = 1; i < completed_attempts; ++i) ms *= retry.multiplier;
  ms = std::min(ms, static_cast<double>(retry.max_backoff.count()));
  if (retry.jitter > 0) {
    const double unit =
        static_cast<double>(NextRand() % 1000) / 999.0;  // [0, 1]
    ms *= 1.0 + retry.jitter * (2.0 * unit - 1.0);
  }
  return std::chrono::milliseconds(
      ms > 0 ? static_cast<int64_t>(ms) : int64_t{0});
}

uint64_t FrameClient::NextRand() {
  uint64_t x = rng_state_;
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  rng_state_ = x;
  return x;
}

}  // namespace net
}  // namespace ldpm
