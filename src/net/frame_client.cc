#include "net/frame_client.h"

#include <utility>

#include "net/protocol.h"
#include "protocols/wire.h"

namespace ldpm {
namespace net {

namespace {

uint64_t ReadU64(const uint8_t* bytes) {
  uint64_t value = 0;
  for (int b = 0; b < 8; ++b) value |= uint64_t{bytes[b]} << (8 * b);
  return value;
}

}  // namespace

StatusOr<FrameClient> FrameClient::Connect(const std::string& address,
                                           uint16_t port) {
  auto socket = Socket::Connect(address, port);
  if (!socket.ok()) return socket.status();
  FrameClient client(*std::move(socket));
  LDPM_RETURN_IF_ERROR(client.socket_.WriteAll(kPreamble, kPreambleBytes));
  return client;
}

Status FrameClient::SendFrame(std::string_view collection_id,
                              const uint8_t* payload, size_t payload_size) {
  if (!connected()) {
    return Status::FailedPrecondition("FrameClient: not connected");
  }
  std::vector<uint8_t> frame;
  LDPM_RETURN_IF_ERROR(
      AppendCollectionFrame(collection_id, payload, payload_size, frame));
  return socket_.WriteAll(frame.data(), frame.size());
}

Status FrameClient::SendFrame(std::string_view collection_id,
                              const std::vector<uint8_t>& payload) {
  return SendFrame(collection_id, payload.data(), payload.size());
}

Status FrameClient::SendBytes(const uint8_t* data, size_t size) {
  if (!connected()) {
    return Status::FailedPrecondition("FrameClient: not connected");
  }
  return socket_.WriteAll(data, size);
}

StatusOr<StreamReply> FrameClient::Finish() {
  if (!connected()) {
    return Status::FailedPrecondition("FrameClient: not connected");
  }
  LDPM_RETURN_IF_ERROR(socket_.ShutdownWrite());
  uint8_t code = 0;
  LDPM_RETURN_IF_ERROR(socket_.ReadExact(&code, 1));
  StreamReply reply;
  if (code == kReplyOk) {
    uint8_t counters[16];
    LDPM_RETURN_IF_ERROR(socket_.ReadExact(counters, sizeof(counters)));
    reply.frames_routed = ReadU64(counters);
    reply.bytes_routed = ReadU64(counters + 8);
  } else if (code == kReplyError) {
    uint8_t header[10];
    LDPM_RETURN_IF_ERROR(socket_.ReadExact(header, sizeof(header)));
    reply.stream_offset = ReadU64(header);
    const size_t message_size = static_cast<size_t>(header[8]) |
                                static_cast<size_t>(header[9]) << 8;
    std::string message(message_size, '\0');
    LDPM_RETURN_IF_ERROR(socket_.ReadExact(
        reinterpret_cast<uint8_t*>(message.data()), message_size));
    reply.status = Status::InvalidArgument(
        "server rejected stream at byte " +
        std::to_string(reply.stream_offset) + ": " + message);
  } else {
    return Status::InvalidArgument(
        "FrameClient: unknown reply code " + std::to_string(code));
  }
  socket_.Close();
  return reply;
}

void FrameClient::Abort() { socket_.Close(); }

}  // namespace net
}  // namespace ldpm
