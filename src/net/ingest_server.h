// Blocking-socket network ingest front-end for the Collector.
//
// The paper's deployment model is millions of users each sending one
// perturbed report to an aggregator; this server is that aggregator's
// listening edge. Each accepted TCP connection carries one preamble-tagged
// stream of collection frames (protocols/wire.h) which a dedicated reader
// thread routes through Collector::IngestFrames into the zero-copy wire
// path — one socket can interleave every registered collection.
//
// Design points:
//
//   * Blocking sockets, one reader thread per connection. The scaling
//     unit is the collector's shard worker pool, not the connection
//     count: readers only move bytes and route frames; all protocol work
//     happens on shard workers.
//   * Backpressure, not buffering. A reader ingests the whole frames its
//     receive buffer holds before reading more, so when the collector is
//     saturated the reader stops consuming the socket and the kernel's
//     TCP flow control pushes back on the client. With a shared
//     IngestBudget configured, readers additionally gate on budget
//     headroom with stop-aware timed probes (IngestBudget::AcquireFor) —
//     a saturated collector never wedges server shutdown, and an optional
//     shed timeout turns sustained overload into a clean connection
//     rejection instead of an unbounded stall.
//   * Byte-precise failure. A mid-stream violation (unknown collection
//     id, malformed frame, oversized frame) stops the connection with an
//     error reply naming the exact stream offset of the first unconsumed
//     byte; frames before it stay ingested (the Collector's documented
//     partial-stream semantics, surfaced by IngestFramesResult).
//   * Resumable sessions. A v2 client names its stream with a session
//     token; the server remembers how many session-stream bytes it has
//     routed, tells a reconnecting client exactly where to resume (hello
//     record), and acks progress as it routes — exactly-once frame
//     delivery through connection churn (see net/protocol.h).
//   * Idle reaping. With idle_timeout set, a connection that delivers no
//     bytes within the deadline is reaped with an error reply instead of
//     holding a connection-cap slot forever (half-open clients).
//   * Graceful stop. Stop() stops accepting, wakes and joins every
//     reader at a frame boundary, then runs Collector::Drain() — so a
//     server shutdown flushes every queued batch and (when configured)
//     writes the shutdown checkpoint. The destructor calls Stop().
//
// The Collector must outlive the server. See docs/wire-format.md
// ("Network stream framing") for the connection protocol bytes and
// net::FrameClient for the matching client.

#ifndef LDPM_NET_INGEST_SERVER_H_
#define LDPM_NET_INGEST_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/sync.h"
#include "engine/collector.h"
#include "net/socket.h"
#include "obs/metrics.h"

namespace ldpm {
namespace net {

/// Tuning knobs for an IngestServer. The defaults run a loopback server
/// on an ephemeral port with generous frame and connection bounds.
struct IngestServerOptions {
  /// Numeric IPv4 address to bind.
  std::string bind_address = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port (read it back with port()).
  uint16_t port = 0;
  /// Kernel accept backlog.
  int accept_backlog = 64;
  /// Live connection cap; connections beyond it are shed at accept with
  /// an error reply. 0 = unbounded.
  int max_connections = 64;
  /// A single collection frame larger than this rejects its connection
  /// (the bound on per-connection receive buffering).
  size_t max_frame_bytes = 64 * 1024 * 1024;
  /// Socket read size per recv call.
  size_t read_chunk_bytes = 64 * 1024;
  /// Slice of the stop-aware budget wait: while the collector's shared
  /// IngestBudget has no headroom, readers re-probe at this period and
  /// re-check the server's stop flag in between.
  std::chrono::milliseconds budget_poll{20};
  /// When > 0: a reader that has seen no budget headroom for this long
  /// sheds its connection with an overload error instead of waiting
  /// longer. 0 = wait as long as it takes (still stop-aware).
  std::chrono::milliseconds budget_shed_after{0};
  /// When > 0: a connection that delivers no bytes for this long is
  /// reaped — its reader sends a DeadlineExceeded error reply and closes,
  /// so half-open or stalled clients cannot hold connection-cap slots
  /// forever. Applies to the preamble/handshake reads too. 0 = wait
  /// indefinitely (the original behavior).
  std::chrono::milliseconds idle_timeout{0};
  /// When > 0: deadline on server-to-client record writes (hello, ack,
  /// final reply) so a peer that stopped reading cannot wedge a reader.
  /// 0 = blocking writes.
  std::chrono::milliseconds reply_write_timeout{0};
  /// Cap on remembered v2 resume sessions; creating one past the cap
  /// evicts the least-recently-used inactive session (a client resuming an
  /// evicted session restarts at offset 0 and fails its replay loudly).
  /// 0 = unbounded.
  size_t max_sessions = 1024;
  /// Run Collector::Drain() at the end of Stop() — the graceful-shutdown
  /// step that flushes all collections and writes the shutdown
  /// checkpoint when the collector is configured for one.
  bool drain_collector_on_stop = true;
  /// Registry the server publishes its ldpm_net_* metrics into (must
  /// outlive the server). Null uses the collector's registry — the common
  /// wiring, putting the whole pipeline behind one /stats endpoint.
  obs::MetricsRegistry* metrics = nullptr;
};

/// Monotonic counters describing everything the server has done so far.
/// A point-in-time view over the server's registry counters (the same
/// series /stats serves).
struct IngestServerStats {
  uint64_t connections_accepted = 0;
  /// Connections rejected at accept (connection cap) or dropped by the
  /// budget shed timeout.
  uint64_t connections_shed = 0;
  /// Whole collection frames routed into the collector.
  uint64_t frames_routed = 0;
  /// Wire batches handed to engines (empty-payload frames route without
  /// enqueueing work).
  uint64_t batches_enqueued = 0;
  /// Bytes of routed frames (excluding preambles and partial tails).
  uint64_t bytes_routed = 0;
  /// Idle connections reaped by the read deadline.
  uint64_t connections_reaped = 0;
  /// v2 sessions re-attached by a reconnecting client.
  uint64_t sessions_resumed = 0;
  /// Ack records written to v2 clients.
  uint64_t acks_sent = 0;
};

/// The listening front-end (see the file comment).
class IngestServer {
 public:
  /// Binds, listens, and starts the accept thread. The collector must
  /// outlive the returned server.
  static StatusOr<std::unique_ptr<IngestServer>> Start(
      engine::Collector* collector,
      const IngestServerOptions& options = IngestServerOptions());

  /// Stop(), ignoring its Status (call Stop() first when it matters).
  ~IngestServer();

  IngestServer(const IngestServer&) = delete;
  IngestServer& operator=(const IngestServer&) = delete;

  /// The bound port (the ephemeral one when options.port was 0).
  uint16_t port() const { return port_; }

  /// Graceful stop: stop accepting, wake and join every connection
  /// reader, then (by default) Drain() the collector. Idempotent; every
  /// call returns the first stop's drain Status. Safe to call while
  /// clients are mid-stream: their connections end with a server-stopping
  /// error reply (best effort — a client still blasting may observe the
  /// closing reset before reading it) and everything already routed
  /// stays ingested.
  Status Stop() LDPM_EXCLUDES(stop_mu_, connections_mu_);

  /// True once Stop() has begun (readers observe this between blocking
  /// operations).
  bool stopping() const { return stopping_.load(std::memory_order_acquire); }

  IngestServerStats stats() const;

  /// Connections currently being served (accepted, not yet finished).
  size_t active_connections() const;

 private:
  struct Connection {
    explicit Connection(Socket s) : socket(std::move(s)) {}
    Socket socket;
    std::thread reader;
    std::atomic<bool> finished{false};
  };

  /// A reader's verdict on its stream: OK for a clean end-of-stream, or
  /// the error to report, anchored at the stream offset of the first
  /// unconsumed frame byte (counted from after the preamble) — plus what
  /// this connection routed, for the reply record.
  struct StreamOutcome {
    Status status;
    uint64_t stream_offset = 0;
    uint64_t frames = 0;
    uint64_t bytes = 0;
  };

  /// One v2 resume session: how far into the session's logical frame
  /// stream the server has routed. Lives in server memory — it survives
  /// connection churn (its purpose), not server restarts.
  struct Session {
    uint64_t routed_bytes = 0;
    uint64_t routed_frames = 0;
    /// A connection currently owns this session; its socket (valid while
    /// the owning reader runs) lets a superseding reconnect wake it.
    bool active = false;
    Socket* owner = nullptr;
    uint64_t last_used = 0;  // logical tick for LRU eviction
  };

  /// Where a (re)attached stream starts: the session's routed state.
  struct StreamContext {
    uint64_t token = 0;  // 0 = one-shot v1 stream, no session
    uint64_t start_offset = 0;
    uint64_t start_frames = 0;
  };

  IngestServer(engine::Collector* collector,
               const IngestServerOptions& options);

  void AcceptLoop();
  void ServeConnection(Connection& connection);
  StreamOutcome ServeStream(Socket& socket);
  StreamOutcome ServeStreamBody(Socket& socket, const StreamContext& context);
  /// Claims the session for `socket`, waking and waiting out a half-open
  /// previous owner. Fills `context` on success.
  Status AcquireSession(uint64_t token, Socket& socket, StreamContext* context)
      LDPM_EXCLUDES(sessions_mu_);
  void ReleaseSession(uint64_t token) LDPM_EXCLUDES(sessions_mu_);
  /// Publishes the owning reader's routing progress into the session the
  /// instant a frame is routed — the exactly-once line a reconnect
  /// resumes from.
  void RecordSessionProgress(uint64_t token, uint64_t routed_bytes,
                             uint64_t frames_delta)
      LDPM_EXCLUDES(sessions_mu_);
  /// Waits (stop-aware) until the collector's shared budget shows
  /// headroom; non-OK on stop or shed timeout.
  Status GateOnBudget();
  void SendReply(Socket& socket, const StreamOutcome& outcome,
                 uint64_t frames, uint64_t bytes);
  /// Joins and drops connections whose readers have finished (called from
  /// the accept thread so a long-lived server does not accumulate them).
  void ReapFinishedLocked() LDPM_REQUIRES(connections_mu_);

  engine::Collector* const collector_;
  const IngestServerOptions options_;
  Socket listener_;
  uint16_t port_ = 0;
  /// True once Start fully succeeded; a half-constructed server's Stop()
  /// must not Drain() the collector.
  bool started_ = false;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};

  mutable core::Mutex connections_mu_;
  std::vector<std::unique_ptr<Connection>> connections_
      LDPM_GUARDED_BY(connections_mu_);

  core::Mutex sessions_mu_;
  core::CondVar sessions_cv_;  // signaled on session release
  std::map<uint64_t, Session> sessions_ LDPM_GUARDED_BY(sessions_mu_);
  uint64_t session_tick_ LDPM_GUARDED_BY(sessions_mu_) = 0;

  core::Mutex stop_mu_;  // serializes Stop(); guards stopped_/stop_status_
  bool stopped_ LDPM_GUARDED_BY(stop_mu_) = false;
  Status stop_status_ LDPM_GUARDED_BY(stop_mu_);

  /// Server metrics, owned by metrics_ (options_.metrics or the
  /// collector's registry). The IngestServerStats accessors read the same
  /// counters, so the admin endpoint and the in-process view always agree.
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Counter* connections_accepted_ = nullptr;
  obs::Counter* connections_shed_ = nullptr;
  obs::Counter* frames_routed_ = nullptr;
  obs::Counter* batches_enqueued_ = nullptr;
  obs::Counter* bytes_routed_ = nullptr;
  obs::Counter* connections_reaped_ = nullptr;
  obs::Counter* sessions_resumed_ = nullptr;
  obs::Counter* acks_sent_ = nullptr;
  obs::Gauge* connections_active_ = nullptr;
  obs::Histogram* route_latency_ = nullptr;
  obs::Histogram* drain_duration_ = nullptr;
};

}  // namespace net
}  // namespace ldpm

#endif  // LDPM_NET_INGEST_SERVER_H_
