#include "net/ingest_server.h"

#include <cstring>
#include <utility>

#include "core/failpoint.h"
#include "net/protocol.h"
#include "protocols/wire.h"

namespace ldpm {
namespace net {

namespace {

void AppendU64(uint64_t value, std::vector<uint8_t>& out) {
  for (int b = 0; b < 8; ++b) {
    out.push_back(static_cast<uint8_t>(value >> (8 * b)));
  }
}

uint64_t ReadU64(const uint8_t* bytes) {
  uint64_t value = 0;
  for (int b = 0; b < 8; ++b) value |= uint64_t{bytes[b]} << (8 * b);
  return value;
}

void WriteU64(uint64_t value, uint8_t* bytes) {
  for (int b = 0; b < 8; ++b) bytes[b] = uint8_t(value >> (8 * b));
}

}  // namespace

IngestServer::IngestServer(engine::Collector* collector,
                           const IngestServerOptions& options)
    : collector_(collector), options_(options) {
  metrics_ =
      options_.metrics != nullptr ? options_.metrics : collector_->metrics();
  connections_accepted_ =
      metrics_->GetCounter("ldpm_net_connections_accepted_total",
                           "TCP connections accepted and handed a reader");
  connections_shed_ = metrics_->GetCounter(
      "ldpm_net_connections_shed_total",
      "Connections rejected at the cap or dropped by the budget shed "
      "timeout");
  frames_routed_ =
      metrics_->GetCounter("ldpm_net_frames_routed_total",
                           "Whole collection frames routed into the collector");
  batches_enqueued_ = metrics_->GetCounter(
      "ldpm_net_batches_enqueued_total",
      "Wire batches handed to engines (empty-payload frames route without "
      "enqueueing work)");
  bytes_routed_ = metrics_->GetCounter(
      "ldpm_net_bytes_routed_total",
      "Bytes of routed frames (excluding preambles and partial tails)");
  connections_active_ = metrics_->GetGauge(
      "ldpm_net_connections_active", "Connections currently being served");
  route_latency_ = metrics_->GetHistogram(
      "ldpm_net_frame_route_latency_ns", obs::LatencyBuckets(),
      "Per-frame latency of Collector::IngestFrames from a reader thread");
  connections_reaped_ = metrics_->GetCounter(
      "ldpm_net_connections_reaped_total",
      "Idle connections reaped by the read deadline");
  sessions_resumed_ = metrics_->GetCounter(
      "ldpm_net_sessions_resumed_total",
      "v2 resume sessions re-attached by a reconnecting client");
  acks_sent_ = metrics_->GetCounter("ldpm_net_acks_sent_total",
                                    "Ack records written to v2 clients");
  drain_duration_ = metrics_->GetHistogram(
      "ldpm_net_drain_duration_ns", obs::LatencyBuckets(),
      "Graceful-stop duration: accept join, reader drain, collector drain");
  LDPM_CHECK(connections_accepted_ && connections_shed_ && frames_routed_ &&
             batches_enqueued_ && bytes_routed_ && connections_reaped_ &&
             sessions_resumed_ && acks_sent_ && connections_active_ &&
             route_latency_ && drain_duration_);
}

StatusOr<std::unique_ptr<IngestServer>> IngestServer::Start(
    engine::Collector* collector, const IngestServerOptions& options) {
  if (collector == nullptr) {
    return Status::InvalidArgument("IngestServer: collector must not be null");
  }
  if (options.read_chunk_bytes == 0 || options.max_frame_bytes == 0) {
    return Status::InvalidArgument(
        "IngestServer: read_chunk_bytes and max_frame_bytes must be > 0");
  }
  auto listener =
      Socket::Listen(options.bind_address, options.port, options.accept_backlog);
  if (!listener.ok()) return listener.status();
  auto port = listener->local_port();
  if (!port.ok()) return port.status();
  std::unique_ptr<IngestServer> server(new IngestServer(collector, options));
  server->listener_ = *std::move(listener);
  server->port_ = *port;
  // Only a server that actually served may Drain() the collector on
  // Stop(): an error return from here must not flush/checkpoint a shared
  // collector as a side effect of its destructor.
  server->started_ = true;
  server->accept_thread_ =
      std::thread([raw = server.get()] { raw->AcceptLoop(); });
  return server;
}

IngestServer::~IngestServer() { (void)Stop(); }

Status IngestServer::Stop() {
  // The graceful-stop sequence: stop accepting -> wake and drain every
  // reader -> Drain() the collector. Serialized so concurrent/second
  // Stop() calls observe the first one's result.
  core::MutexLock stop_lock(stop_mu_);
  if (stopped_) return stop_status_;
  obs::ScopedTimer drain_timer(drain_duration_);
  stopping_.store(true, std::memory_order_release);
  // Wakes the accept thread out of its blocking accept.
  (void)listener_.Shutdown();
  if (accept_thread_.joinable()) accept_thread_.join();
  // The accept thread is joined, so connections_ can no longer grow: move
  // the list out under its lock and run the whole drain on the local copy,
  // so readers are joined without connections_mu_ held (a concurrent
  // active_connections() probe must never block for the length of a
  // drain).
  std::vector<std::unique_ptr<Connection>> to_drain;
  {
    core::MutexLock lock(connections_mu_);
    // Wake readers blocked in recv with a READ-side half-close only: the
    // write side must stay usable so each reader can still deliver its
    // 'server is stopping' error reply (offset + message) before closing.
    // Readers waiting on the ingest budget observe stopping_ at their
    // next timed probe.
    for (auto& connection : connections_) {
      (void)connection->socket.ShutdownRead();
    }
    to_drain.swap(connections_);
  }
  for (auto& connection : to_drain) {
    if (connection->reader.joinable()) connection->reader.join();
  }
  // Abortive close (RST), not a graceful FIN: a mid-stream client
  // blocked in send() against our now-unread receive window must be
  // woken immediately — after the shutdown above, a graceful close
  // would leave it probing a zero window until the kernel's orphan
  // timeout, a minute-scale stall for every saturated client.
  for (auto& connection : to_drain) {
    connection->socket.CloseWithReset();
  }
  to_drain.clear();
  listener_.Close();
  stop_status_ = options_.drain_collector_on_stop && started_
                     ? collector_->Drain()
                     : Status::OK();
  stopped_ = true;
  return stop_status_;
}

IngestServerStats IngestServer::stats() const {
  IngestServerStats stats;
  stats.connections_accepted = connections_accepted_->Value();
  stats.connections_shed = connections_shed_->Value();
  stats.frames_routed = frames_routed_->Value();
  stats.batches_enqueued = batches_enqueued_->Value();
  stats.bytes_routed = bytes_routed_->Value();
  stats.connections_reaped = connections_reaped_->Value();
  stats.sessions_resumed = sessions_resumed_->Value();
  stats.acks_sent = acks_sent_->Value();
  return stats;
}

size_t IngestServer::active_connections() const {
  core::MutexLock lock(connections_mu_);
  size_t active = 0;
  for (const auto& connection : connections_) {
    if (!connection->finished.load(std::memory_order_acquire)) ++active;
  }
  return active;
}

void IngestServer::AcceptLoop() {
  for (;;) {
    auto accepted = listener_.Accept();
    if (!accepted.ok()) {
      if (stopping()) return;
      // Transient accept failures (EMFILE, aborted handshakes) must not
      // spin the thread hot; anything persistent repeats through here.
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      continue;
    }
    Status accept_fault;
    LDPM_FAILPOINT_STATUS("net.server.accept", accept_fault);
    if (!accept_fault.ok()) {
      // Chaos hook: the accept path drops the fresh connection on the
      // floor (reset, no reply) — the client sees pure connection churn.
      accepted->CloseWithReset();
      continue;
    }
    // Hold connections_mu_ only for the membership decision: the shed
    // path's socket I/O and the reader spawn below run without it (a
    // stats probe or a stopping server must never wait on a slow shed
    // peer). Spawning outside the lock is safe because Stop() joins this
    // thread before it touches connections_.
    Connection* connection = nullptr;
    {
      core::MutexLock lock(connections_mu_);
      if (stopping()) return;
      ReapFinishedLocked();
      if (options_.max_connections <= 0 ||
          connections_.size() <
              static_cast<size_t>(options_.max_connections)) {
        connections_.push_back(
            std::make_unique<Connection>(*std::move(accepted)));
        connection = connections_.back().get();
      }
    }
    if (connection == nullptr) {
      // Shed at the door: an explicit rejection beats an accepted
      // connection nobody will ever read. Consume what the client already
      // sent (typically its preamble) before replying and again before
      // closing — closing with unread data resets the connection, which
      // can destroy the reply in flight. Non-blocking and capped: the
      // accept thread must never stall on a shed peer, so a client that
      // keeps blasting can still race the close; best effort by design.
      const auto drain_available = [&accepted] {
        uint8_t sink[4096];
        size_t total = 0;
        while (total < sizeof(sink) * 16) {
          auto n = accepted->ReadAvailable(sink, sizeof(sink));
          if (!n.ok() || *n == 0) break;
          total += *n;
        }
      };
      drain_available();
      StreamOutcome outcome;
      outcome.status = Status::ResourceExhausted(
          "IngestServer: connection limit (" +
          std::to_string(options_.max_connections) + ") reached");
      SendReply(*accepted, outcome, 0, 0);
      drain_available();
      connections_shed_->Increment();
      continue;
    }
    connection->reader = std::thread(
        [this, connection] { ServeConnection(*connection); });
    connections_accepted_->Increment();
  }
}

void IngestServer::ReapFinishedLocked() {
  auto it = connections_.begin();
  while (it != connections_.end()) {
    if ((*it)->finished.load(std::memory_order_acquire)) {
      // A finished flag means the reader is past its last shared access;
      // the join returns as soon as the thread unwinds.
      if ((*it)->reader.joinable()) (*it)->reader.join();
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void IngestServer::ServeConnection(Connection& connection) {
  connections_active_->Add(1);
  const StreamOutcome outcome = ServeStream(connection.socket);
  if (outcome.status.code() == StatusCode::kDeadlineExceeded) {
    connections_reaped_->Increment();
  }
  if (outcome.status.code() == StatusCode::kUnavailable) {
    // The transport itself failed (peer reset, injected connection drop):
    // there is no one to reply to, and a reply record would read as a
    // server verdict to a resuming client. Reset and move on.
    connection.socket.CloseWithReset();
    connections_active_->Add(-1);
    connection.finished.store(true, std::memory_order_release);
    return;
  }
  SendReply(connection.socket, outcome, outcome.frames, outcome.bytes);
  if (!outcome.status.ok()) {
    // On a mid-stream rejection the peer usually has more frames in
    // flight. Closing with unread data makes TCP send a reset, which can
    // destroy the reply sitting in the peer's receive buffer before it is
    // read — so sip the remainder until the peer reacts (EOF) or a cap.
    // Stop() still wakes this recv via the socket shutdown.
    uint8_t sink[4096];
    size_t drained = 0;
    constexpr size_t kMaxErrorDrainBytes = 1 << 20;
    while (drained < kMaxErrorDrainBytes) {
      auto n = connection.socket.ReadSome(sink, sizeof(sink));
      if (!n.ok() || *n == 0) break;
      drained += *n;
    }
  }
  (void)connection.socket.Shutdown();
  connections_active_->Add(-1);
  connection.finished.store(true, std::memory_order_release);
}

Status IngestServer::GateOnBudget() {
  engine::IngestBudget* budget = collector_->shared_budget().get();
  if (budget == nullptr) return Status::OK();
  // The probe (acquire-then-release) costs one slot for an instant and
  // answers "is there headroom right now". It keeps readers responsive:
  // the engines' own internal Acquire blocks indefinitely, but after a
  // successful probe it is nearly always immediate, and in the worst race
  // it is bounded by the shard workers draining one item. Between probes
  // the reader re-checks the stop flag, so a saturated collector can
  // never wedge Stop().
  if (budget->TryAcquire()) {
    budget->Release();
    return Status::OK();
  }
  const bool shed_enabled = options_.budget_shed_after.count() > 0;
  const auto shed_deadline =
      std::chrono::steady_clock::now() + options_.budget_shed_after;
  while (!stopping()) {
    if (budget->AcquireFor(options_.budget_poll)) {
      budget->Release();
      return Status::OK();
    }
    if (shed_enabled && std::chrono::steady_clock::now() >= shed_deadline) {
      connections_shed_->Increment();
      return Status::ResourceExhausted(
          "IngestServer: no ingest-budget headroom for " +
          std::to_string(options_.budget_shed_after.count()) +
          "ms; shedding connection");
    }
  }
  return Status::FailedPrecondition("IngestServer: server is stopping");
}

Status IngestServer::AcquireSession(uint64_t token, Socket& socket,
                                    StreamContext* context) {
  core::MutexLock lock(sessions_mu_);
  const auto busy_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  for (;;) {
    auto it = sessions_.find(token);
    if (it == sessions_.end()) {
      if (options_.max_sessions > 0 &&
          sessions_.size() >= options_.max_sessions) {
        auto victim = sessions_.end();
        for (auto s = sessions_.begin(); s != sessions_.end(); ++s) {
          if (!s->second.active &&
              (victim == sessions_.end() ||
               s->second.last_used < victim->second.last_used)) {
            victim = s;
          }
        }
        if (victim == sessions_.end()) {
          return Status::ResourceExhausted(
              "IngestServer: session table full (" +
              std::to_string(options_.max_sessions) +
              " sessions, all active)");
        }
        sessions_.erase(victim);
      }
      Session& session = sessions_[token];
      session.active = true;
      session.owner = &socket;
      session.last_used = ++session_tick_;
      context->token = token;
      context->start_offset = 0;
      context->start_frames = 0;
      return Status::OK();
    }
    Session& session = it->second;
    if (!session.active) {
      session.active = true;
      session.owner = &socket;
      session.last_used = ++session_tick_;
      context->token = token;
      context->start_offset = session.routed_bytes;
      context->start_frames = session.routed_frames;
      sessions_resumed_->Increment();
      return Status::OK();
    }
    // The session is owned by another connection — almost always a
    // half-open predecessor the client already gave up on. Wake its
    // reader (EOF) and wait for it to publish final progress and release;
    // only then is the resume offset authoritative.
    if (session.owner != nullptr) (void)session.owner->Shutdown();
    if (stopping()) {
      return Status::FailedPrecondition("IngestServer: server is stopping");
    }
    if (std::chrono::steady_clock::now() >= busy_deadline) {
      return Status::ResourceExhausted(
          "IngestServer: session " + std::to_string(token) +
          " is still owned by another connection");
    }
    sessions_cv_.WaitFor(sessions_mu_, std::chrono::milliseconds(50));
  }
}

void IngestServer::ReleaseSession(uint64_t token) {
  {
    core::MutexLock lock(sessions_mu_);
    auto it = sessions_.find(token);
    if (it != sessions_.end()) {
      it->second.active = false;
      it->second.owner = nullptr;
      it->second.last_used = ++session_tick_;
    }
  }
  sessions_cv_.NotifyAll();
}

void IngestServer::RecordSessionProgress(uint64_t token,
                                         uint64_t routed_bytes,
                                         uint64_t frames_delta) {
  core::MutexLock lock(sessions_mu_);
  auto it = sessions_.find(token);
  if (it == sessions_.end()) return;
  it->second.routed_bytes = routed_bytes;
  it->second.routed_frames += frames_delta;
}

IngestServer::StreamOutcome IngestServer::ServeStream(Socket& socket) {
  StreamOutcome outcome;

  // Connection preamble: 7 magic bytes + 1 version byte. The idle
  // deadline applies from the first byte — a connection that never even
  // sends its preamble is exactly the half-open client the reaper exists
  // for.
  uint8_t preamble[kPreambleBytes];
  Status read =
      socket.ReadExact(preamble, kPreambleBytes, options_.idle_timeout);
  if (!read.ok()) {
    outcome.status =
        read.code() == StatusCode::kDeadlineExceeded
            ? Status::DeadlineExceeded(
                  "idle connection: no preamble within " +
                  std::to_string(options_.idle_timeout.count()) +
                  "ms; reaping")
            : Status(read.code(),
                     "reading connection preamble: " + read.message());
    return outcome;
  }
  if (std::memcmp(preamble, kPreambleMagic, sizeof(kPreambleMagic)) != 0) {
    outcome.status = Status::InvalidArgument(
        "connection preamble does not start with \"LDPMNET\"");
    return outcome;
  }
  const uint8_t version = preamble[kPreambleBytes - 1];
  if (version == kVersionOneShot) {
    return ServeStreamBody(socket, StreamContext{});
  }
  if (version != kVersionResume) {
    outcome.status = Status::InvalidArgument(
        "unsupported protocol version " + std::to_string(version) +
        " (expected " + std::to_string(kVersionOneShot) + " or " +
        std::to_string(kVersionResume) + ")");
    return outcome;
  }

  // v2: session token, then our hello record naming the resume offset.
  uint8_t token_bytes[8];
  Status token_read =
      socket.ReadExact(token_bytes, sizeof(token_bytes), options_.idle_timeout);
  if (!token_read.ok()) {
    outcome.status = Status(
        token_read.code(), "reading session token: " + token_read.message());
    return outcome;
  }
  const uint64_t token = ReadU64(token_bytes);
  if (token == 0) {
    outcome.status =
        Status::InvalidArgument("session token must be nonzero");
    return outcome;
  }
  StreamContext context;
  Status acquired = AcquireSession(token, socket, &context);
  if (!acquired.ok()) {
    outcome.status = std::move(acquired);
    return outcome;
  }
  uint8_t hello[9];
  hello[0] = kReplyHello;
  WriteU64(context.start_offset, hello + 1);
  Status hello_write =
      socket.WriteAll(hello, sizeof(hello), options_.reply_write_timeout);
  if (!hello_write.ok()) {
    ReleaseSession(token);
    outcome.status = Status::Unavailable("writing hello record: " +
                                         hello_write.message());
    outcome.stream_offset = context.start_offset;
    return outcome;
  }
  outcome = ServeStreamBody(socket, context);
  ReleaseSession(token);
  return outcome;
}

IngestServer::StreamOutcome IngestServer::ServeStreamBody(
    Socket& socket, const StreamContext& context) {
  StreamOutcome outcome;
  outcome.frames = context.start_frames;
  outcome.bytes = context.start_offset;

  std::vector<uint8_t> buffer;
  // Session-absolute offset of the stream bytes fully routed and
  // discarded (v1 streams start at 0, so it is the plain stream offset).
  uint64_t consumed = context.start_offset;
  for (;;) {
    const size_t old_size = buffer.size();
    buffer.resize(old_size + options_.read_chunk_bytes);
    Status read_fault;
    LDPM_FAILPOINT_STATUS("net.server.read", read_fault);
    auto n = read_fault.ok()
                 ? socket.ReadSome(buffer.data() + old_size,
                                   options_.read_chunk_bytes,
                                   options_.idle_timeout)
                 : StatusOr<size_t>(read_fault);
    if (!n.ok()) {
      buffer.resize(old_size);
      if (stopping()) {
        outcome.status =
            Status::FailedPrecondition("IngestServer: server is stopping");
      } else if (n.status().code() == StatusCode::kDeadlineExceeded) {
        outcome.status = Status::DeadlineExceeded(
            "idle connection: no bytes for " +
            std::to_string(options_.idle_timeout.count()) + "ms; reaping");
      } else {
        outcome.status = n.status();
      }
      outcome.stream_offset = consumed;
      return outcome;
    }
    buffer.resize(old_size + *n);

    // Route every whole frame the buffer now holds, one frame at a time
    // with a budget-headroom gate before each, keeping the partial tail;
    // reading no further until the collector absorbed these is the whole
    // backpressure story. Per-frame gating matters: a frame is exactly
    // one wire batch (one budget slot), so each engine-side acquisition
    // is preceded by its own stop-aware probe — a reader never commits to
    // a long run of stop-unaware engine waits off one probe. One scan per
    // read finds the whole-frame prefix; a frame reader then walks its
    // (already structurally validated) frames linearly.
    FrameStreamPrefix prefix;
    const Status scan =
        ScanCompleteFrames(buffer.data(), buffer.size(), &prefix,
                           options_.max_frame_bytes);
    size_t routed = 0;  // bytes of this buffer already routed
    CollectionFrameReader frames(buffer.data(), prefix.bytes);
    std::string_view frame_id;
    const uint8_t* frame_payload = nullptr;
    size_t frame_payload_size = 0;
    while (frames.Next(frame_id, frame_payload, frame_payload_size)) {
      Status gate = GateOnBudget();
      if (!gate.ok()) {
        outcome.status = std::move(gate);
        outcome.stream_offset = consumed + routed;
        return outcome;
      }
      engine::Collector::IngestFramesResult result;
      Status ingest;
      {
        obs::ScopedTimer route_timer(route_latency_);
        ingest = collector_->IngestFrames(
            buffer.data() + frames.frame_offset(),
            frames.frame_end_offset() - frames.frame_offset(), &result);
      }
      outcome.frames += result.frames_routed;
      outcome.bytes += result.bytes_consumed;
      frames_routed_->Increment(result.frames_routed);
      batches_enqueued_->Increment(result.batches_enqueued);
      bytes_routed_->Increment(result.bytes_consumed);
      if (!ingest.ok()) {
        // Anchor the message at the stream-absolute frame start: the
        // collector saw a one-frame slice, so its own offsets are
        // frame-relative (the reply's stream_offset field is always the
        // authoritative absolute anchor either way).
        outcome.status = Status(
            ingest.code(),
            "frame at stream byte " + std::to_string(consumed + routed) +
                ": " + ingest.message());
        outcome.stream_offset = consumed + routed;
        return outcome;
      }
      routed = frames.frame_end_offset();
      if (context.token != 0) {
        // Publish progress the instant the frame is routed: if this
        // connection dies right now, the resume offset already covers the
        // frame and the client will not replay it.
        RecordSessionProgress(context.token, consumed + routed,
                              result.frames_routed);
      }
    }
    buffer.erase(buffer.begin(), buffer.begin() + routed);
    consumed += routed;
    if (context.token != 0 && routed > 0) {
      // Ack the routing round so the client can trim its replay buffer.
      uint8_t ack[9];
      ack[0] = kReplyAck;
      WriteU64(consumed, ack + 1);
      Status ack_write =
          socket.WriteAll(ack, sizeof(ack), options_.reply_write_timeout);
      if (!ack_write.ok()) {
        outcome.status =
            Status::Unavailable("writing ack record: " + ack_write.message());
        outcome.stream_offset = consumed;
        return outcome;
      }
      acks_sent_->Increment();
    }
    if (!scan.ok()) {
      // Structurally unrepairable (empty collection id): the offending
      // frame starts right where the routed prefix ended — rewrite the
      // scanner's buffer-relative anchor as a stream-absolute one.
      outcome.status = Status(
          scan.code(), "collection frame at stream byte " +
                           std::to_string(consumed) + ": " + scan.message());
      outcome.stream_offset = consumed;
      return outcome;
    }
    if (prefix.pending_frame_bytes > options_.max_frame_bytes) {
      // The scan stops at an over-cap frame whether or not it arrived
      // whole, so this rejection is independent of TCP segmentation.
      outcome.status = Status::InvalidArgument(
          "collection frame of " +
          std::to_string(prefix.pending_frame_bytes) +
          " bytes exceeds the server's max_frame_bytes (" +
          std::to_string(options_.max_frame_bytes) + ")");
      outcome.stream_offset = consumed;
      return outcome;
    }

    if (*n == 0) {
      if (!buffer.empty()) {
        outcome.status = Status::InvalidArgument(
            "connection closed mid-frame with " +
            std::to_string(buffer.size()) + " unconsumed bytes");
        outcome.stream_offset = consumed;
        return outcome;
      }
      if (stopping()) {
        // Indistinguishable from a clean end (the shutdown wake reads as
        // EOF) — report the stop; everything routed stays ingested.
        outcome.status =
            Status::FailedPrecondition("IngestServer: server is stopping");
        outcome.stream_offset = consumed;
        return outcome;
      }
      outcome.status = Status::OK();
      outcome.stream_offset = consumed;
      return outcome;
    }
  }
}

void IngestServer::SendReply(Socket& socket, const StreamOutcome& outcome,
                             uint64_t frames, uint64_t bytes) {
  // Best effort throughout: the peer may already be gone, and the reply
  // is advisory — ingested frames stay ingested either way.
  std::vector<uint8_t> reply;
  if (outcome.status.ok()) {
    reply.push_back(kReplyOk);
    AppendU64(frames, reply);
    AppendU64(bytes, reply);
  } else {
    // Error replies are rare (one per failed connection), so the
    // per-code counter lookup takes the registry path instead of a cache.
    obs::Counter* errors = metrics_->GetCounter(
        obs::WithLabels("ldpm_net_error_replies_total",
                        {{"code", StatusCodeToString(outcome.status.code())}}),
        "Error replies sent to clients, by status code");
    if (errors != nullptr) errors->Increment();
    reply.push_back(kReplyError);
    AppendU64(outcome.stream_offset, reply);
    std::string message = outcome.status.message();
    if (message.size() > kMaxReplyMessageBytes) {
      message.resize(kMaxReplyMessageBytes);
    }
    reply.push_back(static_cast<uint8_t>(message.size() & 0xFF));
    reply.push_back(static_cast<uint8_t>(message.size() >> 8));
    reply.insert(reply.end(), message.begin(), message.end());
  }
  (void)socket.WriteAll(reply.data(), reply.size());
}

}  // namespace net
}  // namespace ldpm
