// Minimal HTTP admin endpoint serving live metrics.
//
// A thin routing layer over net::HttpServer (the shared one-request-per-
// connection GET plumbing), answering:
//
//   GET /stats    -> 200 text/plain: the registry's Prometheus text
//   GET /metrics     exposition (the conventional scrape alias)
//   GET /healthz  -> 200 "ok" (liveness probe)
//   anything else -> 404 (non-GET methods -> 405)
//
// Scrapes are rare and tiny next to ingest traffic, so one serial request
// per connection is plenty. Every read the exposition performs is a
// relaxed atomic load — scraping never blocks a shard worker or a
// connection reader.
//
// The registry must outlive the server. server_demo wires one next to a
// net::IngestServer; the bench/CI smoke scrapes it and reconciles the
// counters against client-side totals.

#ifndef LDPM_NET_STATS_SERVER_H_
#define LDPM_NET_STATS_SERVER_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>

#include "core/status.h"
#include "net/http_server.h"
#include "obs/metrics.h"

namespace ldpm {
namespace net {

struct StatsServerOptions {
  /// Numeric IPv4 address to bind.
  std::string bind_address = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port (read it back with port()).
  uint16_t port = 0;
  /// Kernel accept backlog (scrapers queue here while a request is
  /// served; each request is a single exposition render).
  int accept_backlog = 16;
  /// Cap on request bytes read before answering; a client that streams
  /// an oversized request is answered 400 and closed.
  size_t max_request_bytes = 8 * 1024;
  /// Idle deadline while reading a request: a scraper silent longer than
  /// this mid-request is answered 408 and closed instead of pinning the
  /// serve thread (slowloris defense). <= 0 disables.
  std::chrono::milliseconds idle_timeout{0};
};

/// The admin endpoint (see the file comment). Start() binds and serves
/// until Stop()/destruction.
class StatsServer {
 public:
  /// Binds, listens, and starts the serving thread. The registry must
  /// outlive the returned server.
  static StatusOr<std::unique_ptr<StatsServer>> Start(
      obs::MetricsRegistry* registry,
      const StatsServerOptions& options = StatsServerOptions());

  ~StatsServer() = default;

  StatsServer(const StatsServer&) = delete;
  StatsServer& operator=(const StatsServer&) = delete;

  /// The bound port (the ephemeral one when options.port was 0).
  uint16_t port() const { return http_->port(); }

  /// Stops accepting, wakes any in-flight request read, joins the serving
  /// thread. Idempotent.
  void Stop() { http_->Stop(); }

  /// Requests answered so far (any status). Also published into the
  /// served registry as ldpm_stats_requests_total.
  uint64_t requests_served() const { return http_->requests_served(); }

 private:
  explicit StatsServer(std::unique_ptr<HttpServer> http)
      : http_(std::move(http)) {}

  std::unique_ptr<HttpServer> http_;
};

}  // namespace net
}  // namespace ldpm

#endif  // LDPM_NET_STATS_SERVER_H_
