// Minimal HTTP admin endpoint serving live metrics.
//
// One tiny blocking HTTP/1.0-style server over net::Socket, answering:
//
//   GET /stats    -> 200 text/plain: the registry's Prometheus text
//   GET /metrics     exposition (the conventional scrape alias)
//   GET /healthz  -> 200 "ok" (liveness probe)
//   anything else -> 404 (non-GET methods -> 405)
//
// Scrapes are rare and tiny next to ingest traffic, so the server handles
// one request per connection, serially, on its own accept thread: no
// worker pool, no keep-alive, close after the response. Every read the
// exposition performs is a relaxed atomic load — scraping never blocks a
// shard worker or a connection reader.
//
// The registry must outlive the server. server_demo wires one next to a
// net::IngestServer; the bench/CI smoke scrapes it and reconciles the
// counters against client-side totals.

#ifndef LDPM_NET_STATS_SERVER_H_
#define LDPM_NET_STATS_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "core/status.h"
#include "net/socket.h"
#include "obs/metrics.h"

namespace ldpm {
namespace net {

struct StatsServerOptions {
  /// Numeric IPv4 address to bind.
  std::string bind_address = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port (read it back with port()).
  uint16_t port = 0;
  /// Kernel accept backlog (scrapers queue here while a request is
  /// served; each request is a single exposition render).
  int accept_backlog = 16;
  /// Cap on request bytes read before answering; a client that streams
  /// an oversized request is answered 400 and closed.
  size_t max_request_bytes = 8 * 1024;
};

/// The admin endpoint (see the file comment). Start() binds and serves
/// until Stop()/destruction.
class StatsServer {
 public:
  /// Binds, listens, and starts the serving thread. The registry must
  /// outlive the returned server.
  static StatusOr<std::unique_ptr<StatsServer>> Start(
      obs::MetricsRegistry* registry,
      const StatsServerOptions& options = StatsServerOptions());

  ~StatsServer();

  StatsServer(const StatsServer&) = delete;
  StatsServer& operator=(const StatsServer&) = delete;

  /// The bound port (the ephemeral one when options.port was 0).
  uint16_t port() const { return port_; }

  /// Stops accepting, wakes any in-flight request read, joins the serving
  /// thread. Idempotent.
  void Stop();

  /// Requests answered so far (any status). Also published into the
  /// served registry as ldpm_stats_requests_total.
  uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

 private:
  StatsServer(obs::MetricsRegistry* registry,
              const StatsServerOptions& options);

  void ServeLoop();
  void ServeOne(Socket socket);

  obs::MetricsRegistry* const registry_;
  const StatsServerOptions options_;
  Socket listener_;
  uint16_t port_ = 0;
  std::thread serve_thread_;
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> requests_served_{0};
  obs::Counter* requests_counter_ = nullptr;

  /// The connection currently being served, so Stop() can wake a serve
  /// blocked mid-read on a stalled scraper.
  std::mutex active_mu_;
  Socket* active_ = nullptr;

  std::mutex stop_mu_;  // serializes Stop()
  bool stopped_ = false;
};

}  // namespace net
}  // namespace ldpm

#endif  // LDPM_NET_STATS_SERVER_H_
