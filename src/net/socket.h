// Minimal RAII wrapper over blocking POSIX TCP sockets.
//
// The net layer deliberately runs blocking sockets with one thread per
// connection: the ingest server's scaling unit is the collector's shard
// worker pool, not the connection count, and blocking reads give the
// simplest possible backpressure story (a reader that stops consuming
// stalls the peer through the kernel's socket buffers — no user-space
// queue to bound). Only numeric IPv4 addresses are supported; the intended
// deployments are loopback and pod-internal listeners.

#ifndef LDPM_NET_SOCKET_H_
#define LDPM_NET_SOCKET_H_

#include <chrono>
#include <cstdint>
#include <string>

#include "core/status.h"

namespace ldpm {
namespace net {

/// A connected or listening TCP socket owning its file descriptor.
/// Move-only; the destructor closes. All operations are blocking.
///
/// Thread-safety: distinct Sockets are independent. On one Socket,
/// concurrent Read/Write from two threads is the usual full-duplex TCP
/// contract, and Shutdown() may be called from another thread to wake a
/// blocked Read/Accept (the basis of graceful server stop) — but Close()
/// must not race in-flight operations (the fd could be reused).
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Connects to a numeric IPv4 address ("127.0.0.1") and port. With a
  /// positive `timeout` the connect races a deadline (non-blocking connect
  /// + poll) and a slow peer surfaces as DeadlineExceeded; <= 0 blocks
  /// indefinitely. A refused/reset/unreachable peer is Unavailable — the
  /// retryable transport category (see RetryPolicy in net/frame_client.h).
  static StatusOr<Socket> Connect(
      const std::string& address, uint16_t port,
      std::chrono::milliseconds timeout = std::chrono::milliseconds(0));

  /// Binds and listens on a numeric IPv4 address; port 0 picks an
  /// ephemeral port (read it back with local_port()).
  static StatusOr<Socket> Listen(const std::string& address, uint16_t port,
                                 int backlog);

  /// Accepts one connection; blocks. After Shutdown() (from any thread)
  /// the blocked call returns FailedPrecondition — the stop signal.
  StatusOr<Socket> Accept();

  /// Reads up to `size` bytes; blocks until at least one byte, EOF, or an
  /// error. Returns the byte count, 0 at EOF.
  StatusOr<size_t> ReadSome(uint8_t* data, size_t size);

  /// ReadSome racing a deadline: DeadlineExceeded when no byte (and no
  /// EOF) arrives within `timeout`. <= 0 blocks indefinitely — the
  /// deadline-free overload above. The connection stays usable after a
  /// timeout (nothing was consumed); callers decide whether a deadline
  /// miss reaps the connection (net::IngestServer's idle reaper) or just
  /// retries (net::FrameClient ack polling).
  StatusOr<size_t> ReadSome(uint8_t* data, size_t size,
                            std::chrono::milliseconds timeout);

  /// Non-blocking read: whatever is available right now, possibly 0 (also
  /// 0 at EOF). Never blocks; errors other than would-block surface as a
  /// Status.
  StatusOr<size_t> ReadAvailable(uint8_t* data, size_t size);

  /// Reads exactly `size` bytes or fails (FailedPrecondition on a clean
  /// EOF mid-buffer).
  Status ReadExact(uint8_t* data, size_t size);

  /// ReadExact under one overall deadline across all the reads it takes.
  /// <= 0 blocks indefinitely.
  Status ReadExact(uint8_t* data, size_t size,
                   std::chrono::milliseconds timeout);

  /// Writes all `size` bytes (handling short writes). A peer that closed
  /// or shut down its read side surfaces as a Status, never a SIGPIPE.
  Status WriteAll(const uint8_t* data, size_t size);

  /// WriteAll under an overall deadline (non-blocking sends + poll):
  /// DeadlineExceeded when the whole buffer is not accepted by the kernel
  /// within `timeout` — the guard against a peer that stopped reading and
  /// left our send buffer full. <= 0 blocks indefinitely. After a timeout
  /// an unknown prefix is in flight; the stream is no longer frame-aligned
  /// and the caller should close.
  Status WriteAll(const uint8_t* data, size_t size,
                  std::chrono::milliseconds timeout);

  /// Half-closes the write side (the client's end-of-stream marker).
  Status ShutdownWrite();

  /// Half-closes the read side: local reads return EOF from now on,
  /// waking a thread blocked in Read — while the write side stays usable
  /// (the server's stop path wakes a reader this way so it can still
  /// send its final reply).
  Status ShutdownRead();

  /// Shuts down both directions, waking any thread blocked in
  /// Read/Accept on this socket. The fd stays open until Close().
  Status Shutdown();

  /// The locally bound port (after Listen with port 0: the ephemeral one).
  StatusOr<uint16_t> local_port() const;

  void Close();

  /// Close that sends an immediate TCP reset (SO_LINGER 0) instead of a
  /// graceful FIN. A peer blocked in send() against this socket's closed
  /// receive window is woken by the reset at once; a graceful close would
  /// leave it probing the zero window until the kernel's orphan timeout
  /// (a minute or more). The abortive path for forced teardown.
  void CloseWithReset();

 private:
  int fd_ = -1;
};

}  // namespace net
}  // namespace ldpm

#endif  // LDPM_NET_SOCKET_H_
