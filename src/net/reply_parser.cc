#include "net/reply_parser.h"

#include <string>

#include "net/protocol.h"

namespace ldpm {
namespace net {

namespace {

uint64_t ReadU64(const uint8_t* bytes) {
  uint64_t value = 0;
  for (int b = 0; b < 8; ++b) value |= uint64_t{bytes[b]} << (8 * b);
  return value;
}

}  // namespace

Status StreamReplyParser::Feed(const uint8_t* data, size_t size) {
  if (!error_.ok()) return error_;
  buffer_.insert(buffer_.end(), data, data + size);
  size_t cursor = 0;
  while (cursor < buffer_.size()) {
    const uint8_t code = buffer_[cursor];
    const size_t have = buffer_.size() - cursor;
    if (code == kReplyAck) {
      if (have < 9) break;
      const uint64_t acked = ReadU64(&buffer_[cursor + 1]);
      if (acked > acked_offset_) acked_offset_ = acked;
      cursor += 9;
    } else if (code == kReplyOk) {
      if (have < 17) break;
      StreamReply reply;
      reply.frames_routed = ReadU64(&buffer_[cursor + 1]);
      reply.bytes_routed = ReadU64(&buffer_[cursor + 9]);
      if (reply.bytes_routed > acked_offset_) acked_offset_ = reply.bytes_routed;
      final_reply_ = std::move(reply);
      cursor += 17;
    } else if (code == kReplyError) {
      if (have < 11) break;
      const size_t message_size = static_cast<size_t>(buffer_[cursor + 9]) |
                                  static_cast<size_t>(buffer_[cursor + 10]) << 8;
      if (have < 11 + message_size) break;
      StreamReply reply;
      reply.stream_offset = ReadU64(&buffer_[cursor + 1]);
      std::string message(reinterpret_cast<const char*>(&buffer_[cursor + 11]),
                          message_size);
      reply.status = Status::InvalidArgument(
          "server rejected stream at byte " +
          std::to_string(reply.stream_offset) + ": " + message);
      final_reply_ = std::move(reply);
      cursor += 11 + message_size;
    } else {
      error_ = Status::InvalidArgument(
          "reply stream: unknown reply code " + std::to_string(code) +
          " at byte " + std::to_string(stream_offset_ + cursor));
      break;
    }
  }
  stream_offset_ += cursor;
  buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<ptrdiff_t>(cursor));
  return error_;
}

void StreamReplyParser::Reset() {
  buffer_.clear();
  stream_offset_ = 0;
  error_ = Status::OK();
}

}  // namespace net
}  // namespace ldpm
