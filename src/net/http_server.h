// Shared HTTP plumbing for the admin/read endpoints.
//
// net::StatsServer and net::QueryServer are both tiny GET-only HTTP
// services whose traffic is rare and small next to ingest: one request
// per connection, served serially on a single accept thread, close after
// the response. HttpServer is that plumbing factored out once — socket
// accept loop, request-head collection with byte caps and an idle
// timeout, request-line parsing, and response rendering — so the
// endpoints above it are pure `HttpRequest -> HttpResponse` functions.
//
// Protocol surface (deliberately minimal, byte-precise, and tested in
// tests/net/http_server_test.cc):
//
//   * GET only: any other method is answered `405 Method Not Allowed`
//     before the handler runs.
//   * The request head is read until CRLFCRLF (or LFLF); bodies are never
//     read. A head that exceeds max_request_bytes without terminating is
//     answered `400 Bad Request` ("request too large"); one that does not
//     parse as a request line is answered `400` ("malformed request").
//   * With a positive idle_timeout, a connection that goes silent
//     mid-head for longer than the timeout is answered
//     `408 Request Timeout` and closed — the slowloris defense.
//   * No keep-alive: every response carries `Connection: close` and the
//     server closes after writing it. A pipelined second request on the
//     same connection is ignored by design.
//   * The query string is split off the path and exposed to the handler
//     (HttpRequest::Param); no percent-decoding is performed.

#ifndef LDPM_NET_HTTP_SERVER_H_
#define LDPM_NET_HTTP_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <thread>

#include "core/status.h"
#include "core/sync.h"
#include "net/socket.h"
#include "obs/metrics.h"

namespace ldpm {
namespace net {

struct HttpServerOptions {
  /// Numeric IPv4 address to bind.
  std::string bind_address = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port (read it back with port()).
  uint16_t port = 0;
  /// Kernel accept backlog (requests queue here while one is served).
  int accept_backlog = 16;
  /// Cap on request-head bytes read before answering; a client that
  /// streams an oversized head is answered 400 and closed.
  size_t max_request_bytes = 8 * 1024;
  /// Per-read deadline while collecting the request head: a connection
  /// silent longer than this mid-request is answered 408 and closed
  /// (slowloris defense). <= 0 disables the deadline — reads then block
  /// until bytes, EOF, or Stop().
  std::chrono::milliseconds idle_timeout{0};
  /// Optional counter incremented once per answered request, any status
  /// (must outlive the server). The endpoint's operational request count.
  obs::Counter* requests_counter = nullptr;
};

/// One parsed GET request as handed to the handler.
struct HttpRequest {
  std::string method;
  /// Path with any query string removed ("/v1/marginal").
  std::string path;
  /// Raw query string after '?', possibly empty ("collection=x&attrs=0,2").
  std::string query;

  /// Value of `key` in the query string ("k=v" pairs joined by '&');
  /// nullopt when absent. A bare "k" (no '=') yields an empty value. No
  /// percent-decoding. The first occurrence wins.
  std::optional<std::string> Param(std::string_view key) const;
};

/// What a handler returns; rendered with Content-Length and
/// `Connection: close`.
struct HttpResponse {
  int code = 200;
  std::string content_type = "text/plain";
  std::string body;
};

/// Parses a collected request head ("METHOD SP TARGET SP VERSION..."),
/// splitting the query string off the path, into `out`. Returns false on
/// anything that does not parse as a request line with a non-empty path —
/// the server answers 400 without consulting the handler. Accepts any
/// method token (the GET-only policy is enforced separately, as 405).
/// Pure and total over arbitrary bytes: this is the request-parsing seam
/// the fuzz_http_request harness drives.
bool ParseHttpRequestHead(std::string_view head, HttpRequest* out);

/// The standard reason phrase for the codes this layer emits; "Status"
/// for anything unrecognized (the response stays well-formed).
std::string_view HttpReasonPhrase(int code);

/// Renders a full HTTP/1.1 response (status line, Content-Type,
/// Content-Length, Connection: close, body).
std::string RenderHttpResponse(const HttpResponse& response);

/// Routes one parsed request. Runs on the serve thread; must not block
/// indefinitely (the next request waits behind it).
using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

/// The shared one-request-per-connection GET server (see file comment).
class HttpServer {
 public:
  /// Binds, listens, and starts the serving thread. Anything the handler
  /// captures must outlive the returned server.
  static StatusOr<std::unique_ptr<HttpServer>> Start(
      HttpHandler handler, const HttpServerOptions& options = HttpServerOptions());

  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// The bound port (the ephemeral one when options.port was 0).
  uint16_t port() const { return port_; }

  /// Stops accepting, wakes any in-flight request read, joins the serving
  /// thread. Idempotent.
  void Stop() LDPM_EXCLUDES(stop_mu_, active_mu_);

  /// Requests answered so far (any status, including 4xx).
  uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

 private:
  HttpServer(HttpHandler handler, const HttpServerOptions& options);

  void ServeLoop();
  void ServeOne(Socket socket);

  const HttpHandler handler_;
  const HttpServerOptions options_;
  Socket listener_;
  uint16_t port_ = 0;
  std::thread serve_thread_;
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> requests_served_{0};

  /// The connection currently being served, so Stop() can wake a serve
  /// blocked mid-read on a stalled client.
  core::Mutex active_mu_;
  Socket* active_ LDPM_GUARDED_BY(active_mu_) = nullptr;

  /// Serializes Stop(): deliberately held across the serve-thread join so
  /// a second caller returns only once the first stop completed.
  core::Mutex stop_mu_;
  bool stopped_ LDPM_GUARDED_BY(stop_mu_) = false;
};

}  // namespace net
}  // namespace ldpm

#endif  // LDPM_NET_HTTP_SERVER_H_
