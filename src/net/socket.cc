#include "net/socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace ldpm {
namespace net {

namespace {

Status ErrnoStatus(const std::string& what, int err) {
  return Status::FailedPrecondition(what + ": " + std::strerror(err));
}

StatusOr<sockaddr_in> MakeAddress(const std::string& address, uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, address.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument(
        "Socket: \"" + address + "\" is not a numeric IPv4 address");
  }
  return addr;
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

StatusOr<Socket> Socket::Connect(const std::string& address, uint16_t port) {
  auto addr = MakeAddress(address, port);
  if (!addr.ok()) return addr.status();
  Socket socket(::socket(AF_INET, SOCK_STREAM, 0));
  if (!socket.valid()) return ErrnoStatus("socket", errno);
  if (::connect(socket.fd(), reinterpret_cast<const sockaddr*>(&*addr),
                sizeof(*addr)) != 0) {
    return ErrnoStatus("connect to " + address + ":" + std::to_string(port),
                       errno);
  }
  // The ingest stream is built of already-batched frames; coalescing
  // delays (Nagle) only add latency between a client's last frame and the
  // server's reply.
  const int one = 1;
  (void)::setsockopt(socket.fd(), IPPROTO_TCP, TCP_NODELAY, &one,
                     sizeof(one));
  return socket;
}

StatusOr<Socket> Socket::Listen(const std::string& address, uint16_t port,
                                int backlog) {
  auto addr = MakeAddress(address, port);
  if (!addr.ok()) return addr.status();
  Socket socket(::socket(AF_INET, SOCK_STREAM, 0));
  if (!socket.valid()) return ErrnoStatus("socket", errno);
  const int one = 1;
  (void)::setsockopt(socket.fd(), SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one));
  if (::bind(socket.fd(), reinterpret_cast<const sockaddr*>(&*addr),
             sizeof(*addr)) != 0) {
    return ErrnoStatus("bind to " + address + ":" + std::to_string(port),
                       errno);
  }
  if (::listen(socket.fd(), backlog) != 0) {
    return ErrnoStatus("listen", errno);
  }
  return socket;
}

StatusOr<Socket> Socket::Accept() {
  for (;;) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) return Socket(fd);
    if (errno == EINTR) continue;
    // EINVAL is how Linux reports accept on a listener another thread
    // Shutdown() — the normal stop path, same message either way.
    return ErrnoStatus("accept", errno);
  }
}

StatusOr<size_t> Socket::ReadSome(uint8_t* data, size_t size) {
  for (;;) {
    const ssize_t n = ::recv(fd_, data, size, 0);
    if (n >= 0) return static_cast<size_t>(n);
    if (errno == EINTR) continue;
    return ErrnoStatus("recv", errno);
  }
}

StatusOr<size_t> Socket::ReadAvailable(uint8_t* data, size_t size) {
  for (;;) {
    const ssize_t n = ::recv(fd_, data, size, MSG_DONTWAIT);
    if (n >= 0) return static_cast<size_t>(n);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return size_t{0};
    return ErrnoStatus("recv", errno);
  }
}

Status Socket::ReadExact(uint8_t* data, size_t size) {
  size_t have = 0;
  while (have < size) {
    auto n = ReadSome(data + have, size - have);
    if (!n.ok()) return n.status();
    if (*n == 0) {
      return Status::FailedPrecondition(
          "recv: connection closed after " + std::to_string(have) + " of " +
          std::to_string(size) + " bytes");
    }
    have += *n;
  }
  return Status::OK();
}

Status Socket::WriteAll(const uint8_t* data, size_t size) {
  size_t sent = 0;
  while (sent < size) {
    // MSG_NOSIGNAL: a peer that vanished must surface as a Status the
    // caller can handle, not a process-wide SIGPIPE.
    const ssize_t n = ::send(fd_, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("send", errno);
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status Socket::ShutdownWrite() {
  if (::shutdown(fd_, SHUT_WR) != 0) return ErrnoStatus("shutdown", errno);
  return Status::OK();
}

Status Socket::ShutdownRead() {
  if (::shutdown(fd_, SHUT_RD) != 0) return ErrnoStatus("shutdown", errno);
  return Status::OK();
}

Status Socket::Shutdown() {
  if (::shutdown(fd_, SHUT_RDWR) != 0) return ErrnoStatus("shutdown", errno);
  return Status::OK();
}

StatusOr<uint16_t> Socket::local_port() const {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return ErrnoStatus("getsockname", errno);
  }
  return ntohs(addr.sin_port);
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::CloseWithReset() {
  if (fd_ >= 0) {
    const linger reset{1, 0};
    (void)::setsockopt(fd_, SOL_SOCKET, SO_LINGER, &reset, sizeof(reset));
  }
  Close();
}

}  // namespace net
}  // namespace ldpm
