#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "core/failpoint.h"

namespace ldpm {
namespace net {

namespace {

Status ErrnoStatus(const std::string& what, int err) {
  // Transient transport failures — the peer vanished, refused, or reset —
  // are Unavailable so retry layers (net::FrameClient's RetryPolicy) can
  // distinguish them from protocol violations without string matching.
  switch (err) {
    case ECONNREFUSED:
    case ECONNRESET:
    case ECONNABORTED:
    case EPIPE:
    case ETIMEDOUT:
    case EHOSTUNREACH:
    case ENETUNREACH:
    case ENETDOWN:
      return Status::Unavailable(what + ": " + std::strerror(err));
    default:
      return Status::FailedPrecondition(what + ": " + std::strerror(err));
  }
}

/// Waits until `fd` is ready for `events`; timeout <= 0 waits forever.
Status WaitReady(int fd, short events, std::chrono::milliseconds timeout,
                 const char* what) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    int wait_ms = -1;
    if (timeout.count() > 0) {
      const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - std::chrono::steady_clock::now());
      wait_ms = remaining.count() > 0 ? static_cast<int>(remaining.count()) : 0;
    }
    pollfd p{fd, events, 0};
    const int n = ::poll(&p, 1, wait_ms);
    if (n > 0) return Status::OK();
    if (n == 0) {
      return Status::DeadlineExceeded(std::string(what) + ": timed out after " +
                                      std::to_string(timeout.count()) + "ms");
    }
    if (errno == EINTR) continue;
    return ErrnoStatus(what, errno);
  }
}

Status SetNonBlocking(int fd, bool non_blocking) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return ErrnoStatus("fcntl(F_GETFL)", errno);
  const int want = non_blocking ? flags | O_NONBLOCK : flags & ~O_NONBLOCK;
  if (flags != want && ::fcntl(fd, F_SETFL, want) < 0) {
    return ErrnoStatus("fcntl(F_SETFL)", errno);
  }
  return Status::OK();
}

StatusOr<sockaddr_in> MakeAddress(const std::string& address, uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, address.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument(
        "Socket: \"" + address + "\" is not a numeric IPv4 address");
  }
  return addr;
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

StatusOr<Socket> Socket::Connect(const std::string& address, uint16_t port,
                                 std::chrono::milliseconds timeout) {
  LDPM_FAILPOINT("net.socket.connect");
  auto addr = MakeAddress(address, port);
  if (!addr.ok()) return addr.status();
  Socket socket(::socket(AF_INET, SOCK_STREAM, 0));
  if (!socket.valid()) return ErrnoStatus("socket", errno);
  const std::string what =
      "connect to " + address + ":" + std::to_string(port);
  if (timeout.count() > 0) {
    // Deadline-bounded connect: non-blocking connect, poll for writability,
    // then read the handshake result out of SO_ERROR.
    LDPM_RETURN_IF_ERROR(SetNonBlocking(socket.fd(), true));
    if (::connect(socket.fd(), reinterpret_cast<const sockaddr*>(&*addr),
                  sizeof(*addr)) != 0) {
      if (errno != EINPROGRESS) return ErrnoStatus(what, errno);
      LDPM_RETURN_IF_ERROR(
          WaitReady(socket.fd(), POLLOUT, timeout, what.c_str()));
      int so_error = 0;
      socklen_t len = sizeof(so_error);
      if (::getsockopt(socket.fd(), SOL_SOCKET, SO_ERROR, &so_error, &len) !=
          0) {
        return ErrnoStatus("getsockopt(SO_ERROR)", errno);
      }
      if (so_error != 0) return ErrnoStatus(what, so_error);
    }
    LDPM_RETURN_IF_ERROR(SetNonBlocking(socket.fd(), false));
  } else if (::connect(socket.fd(), reinterpret_cast<const sockaddr*>(&*addr),
                       sizeof(*addr)) != 0) {
    return ErrnoStatus(what, errno);
  }
  // The ingest stream is built of already-batched frames; coalescing
  // delays (Nagle) only add latency between a client's last frame and the
  // server's reply.
  const int one = 1;
  (void)::setsockopt(socket.fd(), IPPROTO_TCP, TCP_NODELAY, &one,
                     sizeof(one));
  return socket;
}

StatusOr<Socket> Socket::Listen(const std::string& address, uint16_t port,
                                int backlog) {
  auto addr = MakeAddress(address, port);
  if (!addr.ok()) return addr.status();
  Socket socket(::socket(AF_INET, SOCK_STREAM, 0));
  if (!socket.valid()) return ErrnoStatus("socket", errno);
  const int one = 1;
  (void)::setsockopt(socket.fd(), SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one));
  if (::bind(socket.fd(), reinterpret_cast<const sockaddr*>(&*addr),
             sizeof(*addr)) != 0) {
    return ErrnoStatus("bind to " + address + ":" + std::to_string(port),
                       errno);
  }
  if (::listen(socket.fd(), backlog) != 0) {
    return ErrnoStatus("listen", errno);
  }
  return socket;
}

StatusOr<Socket> Socket::Accept() {
  LDPM_FAILPOINT("net.socket.accept");
  for (;;) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) return Socket(fd);
    if (errno == EINTR) continue;
    // EINVAL is how Linux reports accept on a listener another thread
    // Shutdown() — the normal stop path, same message either way.
    return ErrnoStatus("accept", errno);
  }
}

StatusOr<size_t> Socket::ReadSome(uint8_t* data, size_t size) {
  LDPM_FAILPOINT("net.socket.read");
  for (;;) {
    const ssize_t n = ::recv(fd_, data, size, 0);
    if (n >= 0) return static_cast<size_t>(n);
    if (errno == EINTR) continue;
    return ErrnoStatus("recv", errno);
  }
}

StatusOr<size_t> Socket::ReadSome(uint8_t* data, size_t size,
                                  std::chrono::milliseconds timeout) {
  if (timeout.count() <= 0) return ReadSome(data, size);
  LDPM_FAILPOINT("net.socket.read");
  LDPM_RETURN_IF_ERROR(WaitReady(fd_, POLLIN, timeout, "recv"));
  for (;;) {
    const ssize_t n = ::recv(fd_, data, size, 0);
    if (n >= 0) return static_cast<size_t>(n);
    if (errno == EINTR) continue;
    return ErrnoStatus("recv", errno);
  }
}

StatusOr<size_t> Socket::ReadAvailable(uint8_t* data, size_t size) {
  for (;;) {
    const ssize_t n = ::recv(fd_, data, size, MSG_DONTWAIT);
    if (n >= 0) return static_cast<size_t>(n);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return size_t{0};
    return ErrnoStatus("recv", errno);
  }
}

Status Socket::ReadExact(uint8_t* data, size_t size) {
  return ReadExact(data, size, std::chrono::milliseconds(0));
}

Status Socket::ReadExact(uint8_t* data, size_t size,
                         std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  size_t have = 0;
  while (have < size) {
    std::chrono::milliseconds remaining{0};
    if (timeout.count() > 0) {
      remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - std::chrono::steady_clock::now());
      if (remaining.count() <= 0) {
        return Status::DeadlineExceeded(
            "recv: timed out after " + std::to_string(timeout.count()) +
            "ms with " + std::to_string(have) + " of " +
            std::to_string(size) + " bytes read");
      }
    }
    auto n = ReadSome(data + have, size - have, remaining);
    if (!n.ok()) return n.status();
    if (*n == 0) {
      return Status::FailedPrecondition(
          "recv: connection closed after " + std::to_string(have) + " of " +
          std::to_string(size) + " bytes");
    }
    have += *n;
  }
  return Status::OK();
}

Status Socket::WriteAll(const uint8_t* data, size_t size) {
  LDPM_FAILPOINT("net.socket.write");
  size_t sent = 0;
  while (sent < size) {
    // MSG_NOSIGNAL: a peer that vanished must surface as a Status the
    // caller can handle, not a process-wide SIGPIPE.
    const ssize_t n = ::send(fd_, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("send", errno);
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status Socket::WriteAll(const uint8_t* data, size_t size,
                        std::chrono::milliseconds timeout) {
  if (timeout.count() <= 0) return WriteAll(data, size);
  LDPM_FAILPOINT("net.socket.write");
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd_, data + sent, size - sent,
                             MSG_NOSIGNAL | MSG_DONTWAIT);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno != EINTR && errno != EAGAIN && errno != EWOULDBLOCK) {
      return ErrnoStatus("send", errno);
    }
    const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (remaining.count() <= 0) {
      return Status::DeadlineExceeded(
          "send: timed out after " + std::to_string(timeout.count()) +
          "ms with " + std::to_string(size - sent) + " of " +
          std::to_string(size) + " bytes unsent");
    }
    LDPM_RETURN_IF_ERROR(WaitReady(fd_, POLLOUT, remaining, "send"));
  }
  return Status::OK();
}

Status Socket::ShutdownWrite() {
  if (::shutdown(fd_, SHUT_WR) != 0) return ErrnoStatus("shutdown", errno);
  return Status::OK();
}

Status Socket::ShutdownRead() {
  if (::shutdown(fd_, SHUT_RD) != 0) return ErrnoStatus("shutdown", errno);
  return Status::OK();
}

Status Socket::Shutdown() {
  if (::shutdown(fd_, SHUT_RDWR) != 0) return ErrnoStatus("shutdown", errno);
  return Status::OK();
}

StatusOr<uint16_t> Socket::local_port() const {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return ErrnoStatus("getsockname", errno);
  }
  return ntohs(addr.sin_port);
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::CloseWithReset() {
  if (fd_ >= 0) {
    const linger reset{1, 0};
    (void)::setsockopt(fd_, SOL_SOCKET, SO_LINGER, &reset, sizeof(reset));
  }
  Close();
}

}  // namespace net
}  // namespace ldpm
