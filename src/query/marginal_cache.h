// The query-serving plane's cache: epoch-snapshotted, consistency-
// post-processed marginal tables served lock-free.
//
// The write path (net::IngestServer -> engine::Collector) absorbs
// millions of reports; the read path a deployment needs is the opposite
// shape — millions of identical cheap reads over state that changes
// rarely. Today `Collector::Query` re-merges shard state per call and
// answers each marginal independently, so overlapping answers disagree
// (the artifact src/analysis/consistency.h exists to remove). The
// MarginalCache closes both gaps:
//
//   * Once per *epoch* it snapshots a collection: queries every marginal
//     selector up to `max_order` from the merged engine state, runs
//     MakeConsistent over the whole set (one shared low-order Fourier
//     fit, Barak-style), and freezes the result into an immutable
//     Snapshot. Every answer served from one snapshot agrees exactly
//     with every other on all attribute overlaps, by construction.
//   * Reads are lock-free: the current snapshot hangs off one
//     std::atomic<std::shared_ptr>; a cache hit is an atomic load, a
//     hash lookup, and a copy of 2^k doubles. No shard merge, no mutex.
//   * Epochs are keyed on an ingest *watermark* — the collection's
//     `ldpm_engine_batches_enqueued_total` counter. A snapshot built at
//     watermark W serves until the counter advances past W; the next
//     read then rebuilds (or, with serve_stale, keeps serving the old
//     epoch while one thread rebuilds). The watermark is captured
//     *before* the rebuild queries run, so a snapshot's watermark is
//     always a lower bound on the ingest it reflects — concurrent
//     ingest during a rebuild makes the fresh snapshot immediately
//     stale, never silently under-reported.
//
// Restores and resets do not advance the batch counter; operational
// paths that replace engine state out-of-band (Collector::RestoreFrom)
// must call Invalidate() to force the next read to rebuild.
//
// Reproducibility contract (verified bitwise in tests/query/): a cache
// answer at watermark W equals `Collector::Query` for every selector +
// `MakeConsistent` (equal weights) over the same selector set at W.
//
// Domains: the cache serves the binary-marginal surface
// (MarginalTable). InpES collections participate when their domain is
// all-binary (every cardinality 2); non-binary categorical domains are
// rejected at Create — their read path is Collector::QueryCategorical.
//
// Metrics (labeled {collection="<id>"}, in the collector's registry):
//   ldpm_query_requests_total        every cache read
//   ldpm_query_cache_hits_total      reads answered from the live snapshot
//   ldpm_query_cache_refreshes_total snapshot rebuilds
//   ldpm_query_stale_served_total    stale answers under serve_stale
//   ldpm_query_refresh_latency_ns    rebuild duration histogram

#ifndef LDPM_QUERY_MARGINAL_CACHE_H_
#define LDPM_QUERY_MARGINAL_CACHE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/tree_model.h"
#include "core/contingency_table.h"
#include "core/status.h"
#include "core/sync.h"
#include "engine/collector.h"
#include "obs/metrics.h"

namespace ldpm {
namespace query {

struct MarginalCacheOptions {
  /// Highest marginal order materialized per snapshot: every selector
  /// beta with 1 <= |beta| <= max_order is cached. 0 means the
  /// collection's configured k.
  int max_order = 0;
  /// When a read finds the snapshot stale and another thread is already
  /// rebuilding, serve the stale epoch (counted in
  /// ldpm_query_stale_served_total) instead of blocking behind the
  /// rebuild. The default blocks: every answer reflects the live
  /// watermark at the time it was served.
  bool serve_stale = false;
  /// Conditional-probability floor for the lazily fitted Chow-Liu tree
  /// model (Snapshot::Model).
  double model_smoothing = 1e-6;
};

/// One immutable epoch of served state. Shared out to readers by
/// shared_ptr; a snapshot never mutates after publication (the lazily
/// fitted model is memoized under std::call_once).
class Snapshot {
 public:
  /// Ingest watermark (batches-enqueued counter) captured before the
  /// rebuild's queries ran: a lower bound on the state served.
  uint64_t watermark() const { return watermark_; }
  /// Monotone rebuild sequence number, starting at 1.
  uint64_t epoch() const { return epoch_; }
  /// Reports absorbed by the collection when the snapshot was cut.
  uint64_t reports_absorbed() const { return reports_absorbed_; }
  int dimensions() const { return d_; }
  int max_order() const { return max_order_; }
  ProtocolKind kind() const { return kind_; }
  const std::string& collection() const { return collection_; }

  /// Every cached selector, ascending order then ascending beta.
  const std::vector<uint64_t>& selectors() const { return selectors_; }
  /// The consistent tables, aligned with selectors().
  const std::vector<MarginalTable>& marginals() const { return marginals_; }

  /// The cached table for `beta`, or null when |beta| exceeds max_order
  /// or beta selects attributes outside [0, d).
  const MarginalTable* Find(uint64_t beta) const;

  /// The Chow-Liu tree model fitted over this snapshot's 2-way
  /// marginals; fitted on first call, memoized (thread-safe). Requires
  /// max_order >= 2 and d >= 2.
  StatusOr<const TreeModel*> Model() const;

 private:
  friend class MarginalCache;
  Snapshot() = default;

  uint64_t watermark_ = 0;
  uint64_t epoch_ = 0;
  uint64_t reports_absorbed_ = 0;
  int d_ = 0;
  int max_order_ = 0;
  ProtocolKind kind_ = ProtocolKind::kInpRR;
  std::string collection_;
  double model_smoothing_ = 1e-6;
  std::vector<uint64_t> selectors_;
  std::vector<MarginalTable> marginals_;
  std::unordered_map<uint64_t, size_t> index_;  // beta -> marginals_ slot

  mutable std::once_flag model_once_;
  mutable std::optional<TreeModel> model_;
  mutable Status model_status_;
};

/// One answered read: the table plus the epoch it came from.
struct MarginalAnswer {
  MarginalTable table;
  uint64_t watermark = 0;
  uint64_t epoch = 0;
  /// True when the answer predates the live watermark (serve_stale only).
  bool stale = false;

  MarginalAnswer() : table(0, 0) {}
};

/// The per-collection cache (see the file comment). Thread-safe; reads
/// that hit the live snapshot are lock-free.
class MarginalCache {
 public:
  /// Builds a cache over one registered collection. Fails NotFound for
  /// an unknown id and FailedPrecondition for a non-binary categorical
  /// (InpES) domain. No snapshot is cut yet — the first read pays the
  /// first rebuild.
  static StatusOr<std::unique_ptr<MarginalCache>> Create(
      engine::Collector* collector, const std::string& collection,
      const MarginalCacheOptions& options = MarginalCacheOptions());

  /// The current snapshot, rebuilding first when none exists or the
  /// ingest watermark advanced. Under serve_stale a read that loses the
  /// rebuild race returns the previous epoch instead of waiting.
  StatusOr<std::shared_ptr<const Snapshot>> Get();

  /// Get() + lookup + copy of the single table for `beta`.
  /// InvalidArgument when beta is outside the cached selector set.
  StatusOr<MarginalAnswer> Marginal(uint64_t beta);

  /// Forces a rebuild now, regardless of the watermark.
  Status Refresh();

  /// Drops the current snapshot so the next read rebuilds — for state
  /// changes the watermark cannot see (Collector::RestoreFrom).
  void Invalidate();

  /// The live batches-enqueued counter the staleness check reads.
  uint64_t LiveWatermark() const;

  int dimensions() const { return d_; }
  int max_order() const { return options_.max_order; }
  ProtocolKind kind() const { return handle_.kind(); }
  const std::string& collection() const { return collection_; }

 private:
  MarginalCache(engine::Collector* collector, engine::CollectionHandle handle,
                std::string collection, const MarginalCacheOptions& options);

  /// Cuts and publishes a fresh snapshot.
  Status RebuildLocked() LDPM_REQUIRES(refresh_mu_);

  engine::Collector* const collector_;
  engine::CollectionHandle handle_;
  const std::string collection_;
  MarginalCacheOptions options_;  // max_order resolved at Create
  int d_ = 0;
  std::string watermark_series_;
  std::vector<uint64_t> selectors_;

  std::atomic<std::shared_ptr<const Snapshot>> snapshot_{nullptr};
  core::Mutex refresh_mu_;
  uint64_t epoch_seq_ LDPM_GUARDED_BY(refresh_mu_) = 0;

  obs::Counter* requests_ = nullptr;
  obs::Counter* hits_ = nullptr;
  obs::Counter* refreshes_ = nullptr;
  obs::Counter* stale_served_ = nullptr;
  obs::Histogram* refresh_latency_ = nullptr;
};

}  // namespace query
}  // namespace ldpm

#endif  // LDPM_QUERY_MARGINAL_CACHE_H_
