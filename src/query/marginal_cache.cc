#include "query/marginal_cache.h"

#include <utility>

#include "analysis/consistency.h"
#include "core/failpoint.h"
#include "core/marginal.h"
#include "protocols/inp_es_adapter.h"

namespace ldpm {
namespace query {

namespace {

std::string QueryMetricName(const char* base, const std::string& collection) {
  return obs::WithLabels(base, {{"collection", collection}});
}

}  // namespace

// ---- Snapshot --------------------------------------------------------------

const MarginalTable* Snapshot::Find(uint64_t beta) const {
  auto it = index_.find(beta);
  return it == index_.end() ? nullptr : &marginals_[it->second];
}

StatusOr<const TreeModel*> Snapshot::Model() const {
  std::call_once(model_once_, [this] {
    if (d_ < 2 || max_order_ < 2) {
      model_status_ = Status::FailedPrecondition(
          "Snapshot: the tree model needs d >= 2 and cached 2-way "
          "marginals (max_order >= 2)");
      return;
    }
    auto provider = [this](uint64_t beta) -> StatusOr<MarginalTable> {
      const MarginalTable* table = Find(beta);
      if (table == nullptr) {
        return Status::Internal("Snapshot: 2-way marginal missing from cache");
      }
      return *table;
    };
    auto model = TreeModel::LearnAndFit(d_, provider, model_smoothing_);
    if (!model.ok()) {
      model_status_ = model.status();
      return;
    }
    model_.emplace(*std::move(model));
  });
  if (!model_status_.ok()) return model_status_;
  return &*model_;
}

// ---- MarginalCache ---------------------------------------------------------

MarginalCache::MarginalCache(engine::Collector* collector,
                             engine::CollectionHandle handle,
                             std::string collection,
                             const MarginalCacheOptions& options)
    : collector_(collector),
      handle_(std::move(handle)),
      collection_(std::move(collection)),
      options_(options),
      d_(handle_.config().d),
      watermark_series_(obs::WithLabels("ldpm_engine_batches_enqueued_total",
                                       {{"collection", collection_}})),
      selectors_(FullKWaySelectors(d_, options_.max_order)) {
  obs::MetricsRegistry* metrics = collector_->metrics();
  requests_ = metrics->GetCounter(
      QueryMetricName("ldpm_query_requests_total", collection_),
      "Marginal-cache reads");
  hits_ = metrics->GetCounter(
      QueryMetricName("ldpm_query_cache_hits_total", collection_),
      "Reads answered from the live snapshot without a rebuild");
  refreshes_ = metrics->GetCounter(
      QueryMetricName("ldpm_query_cache_refreshes_total", collection_),
      "Snapshot rebuilds (epoch advances)");
  stale_served_ = metrics->GetCounter(
      QueryMetricName("ldpm_query_stale_served_total", collection_),
      "Stale-epoch answers served while a rebuild ran (serve_stale)");
  refresh_latency_ = metrics->GetHistogram(
      QueryMetricName("ldpm_query_refresh_latency_ns", collection_),
      obs::LatencyBuckets(), "Snapshot rebuild duration in nanoseconds");
}

StatusOr<std::unique_ptr<MarginalCache>> MarginalCache::Create(
    engine::Collector* collector, const std::string& collection,
    const MarginalCacheOptions& options) {
  if (collector == nullptr) {
    return Status::InvalidArgument("MarginalCache: collector must not be null");
  }
  auto handle = collector->Handle(collection);
  if (!handle.ok()) return handle.status();
  const ProtocolConfig& config = handle->config();
  if (handle->kind() == ProtocolKind::kInpES) {
    for (uint32_t r : EsCardinalities(config)) {
      if (r != 2) {
        return Status::FailedPrecondition(
            "MarginalCache: collection \"" + collection +
            "\" has a non-binary categorical domain; its read path is "
            "Collector::QueryCategorical");
      }
    }
  }
  MarginalCacheOptions resolved = options;
  if (resolved.max_order == 0) resolved.max_order = config.k;
  if (resolved.max_order < 1 || resolved.max_order > config.k) {
    return Status::InvalidArgument(
        "MarginalCache: max_order must be in [1, k] — the engine only "
        "estimates marginals up to the configured order k=" +
        std::to_string(config.k));
  }
  return std::unique_ptr<MarginalCache>(new MarginalCache(
      collector, *std::move(handle), collection, resolved));
}

uint64_t MarginalCache::LiveWatermark() const {
  return collector_->metrics()->CounterValue(watermark_series_);
}

StatusOr<std::shared_ptr<const Snapshot>> MarginalCache::Get() {
  requests_->Increment();
  auto snap = snapshot_.load(std::memory_order_acquire);
  if (snap != nullptr && snap->watermark() == LiveWatermark()) {
    hits_->Increment();
    return snap;
  }
  if (snap != nullptr && options_.serve_stale) {
    if (!refresh_mu_.TryLock()) {
      // Another thread is rebuilding; answer from the old epoch now.
      stale_served_->Increment();
      return snap;
    }
    // Explicit TryLock/Unlock (no early returns in between) so the
    // analysis sees a single acquire/release pair on both branches.
    Status rebuilt = Status::OK();
    auto current = snapshot_.load(std::memory_order_acquire);
    if (current == nullptr || current->watermark() != LiveWatermark()) {
      rebuilt = RebuildLocked();
    }
    refresh_mu_.Unlock();
    if (!rebuilt.ok()) return rebuilt;
    return snapshot_.load(std::memory_order_acquire);
  }
  core::MutexLock lock(refresh_mu_);
  auto current = snapshot_.load(std::memory_order_acquire);
  if (current != nullptr && current->watermark() == LiveWatermark()) {
    // A concurrent reader rebuilt while we waited for the lock.
    hits_->Increment();
    return current;
  }
  LDPM_RETURN_IF_ERROR(RebuildLocked());
  return snapshot_.load(std::memory_order_acquire);
}

StatusOr<MarginalAnswer> MarginalCache::Marginal(uint64_t beta) {
  auto snap = Get();
  if (!snap.ok()) return snap.status();
  const MarginalTable* table = (*snap)->Find(beta);
  if (table == nullptr) {
    return Status::InvalidArgument(
        "MarginalCache: selector outside the cached set (order must be in "
        "[1, " +
        std::to_string(options_.max_order) + "], attributes in [0, " +
        std::to_string(d_) + "))");
  }
  MarginalAnswer answer;
  answer.table = *table;
  answer.watermark = (*snap)->watermark();
  answer.epoch = (*snap)->epoch();
  answer.stale = (*snap)->watermark() != LiveWatermark();
  return answer;
}

Status MarginalCache::Refresh() {
  core::MutexLock lock(refresh_mu_);
  return RebuildLocked();
}

void MarginalCache::Invalidate() {
  snapshot_.store(nullptr, std::memory_order_release);
}

Status MarginalCache::RebuildLocked() {
  // Injection seam for rebuild stalls and failures (the serve_stale and
  // error-propagation tests drive through it).
  LDPM_FAILPOINT("query.cache.rebuild");
  obs::ScopedTimer timer(refresh_latency_);
  // Captured before the queries: concurrent ingest during the rebuild
  // leaves the fresh snapshot already stale (conservative), never
  // serving unseen data under a current watermark.
  const uint64_t watermark = LiveWatermark();
  std::vector<MarginalTable> raw;
  raw.reserve(selectors_.size());
  for (uint64_t beta : selectors_) {
    auto table = handle_.Query(beta);
    if (!table.ok()) return table.status();
    raw.push_back(*std::move(table));
  }
  // Equal weights: every input comes from the same merged engine state,
  // so per-marginal report counts carry no extra information — and the
  // equal-weight fit is exactly what the bitwise-reproducibility
  // contract (file comment) pins down.
  auto consistent = MakeConsistent(raw, d_);
  if (!consistent.ok()) return consistent.status();
  auto reports = handle_.ReportsAbsorbed();

  std::shared_ptr<Snapshot> snap(new Snapshot());
  snap->watermark_ = watermark;
  snap->epoch_ = ++epoch_seq_;
  snap->reports_absorbed_ = reports.ok() ? *reports : 0;
  snap->d_ = d_;
  snap->max_order_ = options_.max_order;
  snap->kind_ = handle_.kind();
  snap->collection_ = collection_;
  snap->model_smoothing_ = options_.model_smoothing;
  snap->selectors_ = selectors_;
  snap->marginals_ = *std::move(consistent);
  snap->index_.reserve(snap->selectors_.size());
  for (size_t i = 0; i < snap->selectors_.size(); ++i) {
    snap->index_.emplace(snap->selectors_[i], i);
  }
  snapshot_.store(std::shared_ptr<const Snapshot>(std::move(snap)),
                  std::memory_order_release);
  refreshes_->Increment();
  return Status::OK();
}

}  // namespace query
}  // namespace ldpm
