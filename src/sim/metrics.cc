#include "sim/metrics.h"

#include <algorithm>
#include <cmath>

namespace ldpm {

StatusOr<SummaryStats> Summarize(const std::vector<double>& values) {
  if (values.empty()) {
    return Status::InvalidArgument("Summarize: empty sample");
  }
  SummaryStats stats;
  stats.count = values.size();
  stats.min = values[0];
  stats.max = values[0];
  double sum = 0.0;
  for (double v : values) {
    sum += v;
    stats.min = std::min(stats.min, v);
    stats.max = std::max(stats.max, v);
  }
  stats.mean = sum / static_cast<double>(values.size());
  if (values.size() > 1) {
    double ss = 0.0;
    for (double v : values) {
      const double diff = v - stats.mean;
      ss += diff * diff;
    }
    stats.stddev = std::sqrt(ss / static_cast<double>(values.size() - 1));
    stats.standard_error =
        stats.stddev / std::sqrt(static_cast<double>(values.size()));
  }
  return stats;
}

StatusOr<double> L1Distance(const MarginalTable& a, const MarginalTable& b) {
  if (a.beta() != b.beta() || a.dimensions() != b.dimensions()) {
    return Status::InvalidArgument("L1Distance: selector mismatch");
  }
  double l1 = 0.0;
  for (uint64_t i = 0; i < a.size(); ++i) {
    l1 += std::fabs(a.at_compact(i) - b.at_compact(i));
  }
  return l1;
}

StatusOr<double> MaxAbsoluteError(const MarginalTable& a,
                                  const MarginalTable& b) {
  if (a.beta() != b.beta() || a.dimensions() != b.dimensions()) {
    return Status::InvalidArgument("MaxAbsoluteError: selector mismatch");
  }
  double max_err = 0.0;
  for (uint64_t i = 0; i < a.size(); ++i) {
    max_err = std::max(max_err, std::fabs(a.at_compact(i) - b.at_compact(i)));
  }
  return max_err;
}

}  // namespace ldpm
