#include "sim/experiment.h"

#include <cstdio>
#include <future>

namespace ldpm {

StatusOr<RepeatedResult> RunRepeated(const BinaryDataset& source,
                                     const SimulationOptions& options,
                                     int repetitions, bool parallel) {
  if (repetitions < 1) {
    return Status::InvalidArgument("RunRepeated: repetitions must be >= 1");
  }

  std::vector<StatusOr<SimulationResult>> runs;
  runs.reserve(repetitions);
  if (parallel && repetitions > 1) {
    std::vector<std::future<StatusOr<SimulationResult>>> futures;
    futures.reserve(repetitions);
    for (int r = 0; r < repetitions; ++r) {
      SimulationOptions rep = options;
      rep.seed = options.seed + static_cast<uint64_t>(r);
      futures.push_back(std::async(std::launch::async, [&source, rep]() {
        return RunSimulation(source, rep);
      }));
    }
    for (auto& f : futures) runs.push_back(f.get());
  } else {
    for (int r = 0; r < repetitions; ++r) {
      SimulationOptions rep = options;
      rep.seed = options.seed + static_cast<uint64_t>(r);
      runs.push_back(RunSimulation(source, rep));
    }
  }

  RepeatedResult result;
  std::vector<double> tvs;
  tvs.reserve(repetitions);
  double bits = 0.0;
  for (auto& run : runs) {
    if (!run.ok()) return run.status();
    result.protocol = run->protocol;
    tvs.push_back(run->mean_tv);
    bits += run->bits_per_user;
  }
  auto stats = Summarize(tvs);
  if (!stats.ok()) return stats.status();
  result.mean_tv = *stats;
  result.bits_per_user = bits / static_cast<double>(repetitions);
  result.repetitions = repetitions;
  return result;
}

std::string Fixed(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string WithError(double value, double err, int precision) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%.*f±%.*f", precision, value, precision,
                err);
  return buf;
}

}  // namespace ldpm
