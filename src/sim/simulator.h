// End-to-end protocol simulation: sample a population from a dataset, run
// one protocol over it, and score the reconstructed marginals against the
// population's exact marginals (the paper's experimental loop, Section 5).

#ifndef LDPM_SIM_SIMULATOR_H_
#define LDPM_SIM_SIMULATOR_H_

#include <string>
#include <vector>

#include "data/dataset.h"
#include "protocols/factory.h"
#include "sim/metrics.h"

namespace ldpm {

/// One simulation run's parameters.
struct SimulationOptions {
  ProtocolKind kind = ProtocolKind::kInpHT;
  ProtocolConfig config;
  /// Users sampled (with replacement) from the source dataset.
  size_t num_users = size_t{1} << 16;
  uint64_t seed = 1;
  /// Use AbsorbPopulation (distribution-exact aggregate path) instead of
  /// the per-user Encode/Absorb loop.
  bool use_fast_path = true;
  /// Order of the marginals scored; 0 means "score order config.k".
  int eval_order = 0;
  /// Number of aggregation shards. 1 runs the classic single-aggregator
  /// loop; > 1 hosts the run as a collection of an engine::Collector
  /// (worker threads, per-shard Rng streams — distribution-equivalent).
  int num_shards = 1;
  /// Non-empty hosts the run on a categorical domain (kind must be
  /// kInpES, the one protocol speaking mixed-radix tuples). Each sampled
  /// binary row is read as the domain's packed encoding — attribute i
  /// takes ceil(log2 r_i) row bits (wrapped over the source's width),
  /// folded mod r_i — and the derived tuple is absorbed as its
  /// mixed-radix packing. Scoring runs EstimateCategorical against the
  /// derived tuples' exact marginals; estimated mass on invalid codes
  /// counts as error. Empty keeps the binary-marginal loop, which
  /// previously ran (wrongly) even for categorical configs.
  std::vector<uint32_t> cardinalities;
};

/// One simulation run's outcome.
struct SimulationResult {
  std::string protocol;
  /// Mean / max total-variation distance over all scored marginals.
  double mean_tv = 0.0;
  double max_tv = 0.0;
  int num_marginals = 0;
  /// Measured communication (bits per user).
  double bits_per_user = 0.0;
  /// Wall-clock split: client+absorb phase and estimation phase.
  double encode_absorb_seconds = 0.0;
  double estimate_seconds = 0.0;
  /// Ingest throughput over the encode+absorb phase (reports per second).
  double ingest_reports_per_second = 0.0;
};

/// Runs one simulation. Deterministic given options.seed.
StatusOr<SimulationResult> RunSimulation(const BinaryDataset& source,
                                         const SimulationOptions& options);

}  // namespace ldpm

#endif  // LDPM_SIM_SIMULATOR_H_
