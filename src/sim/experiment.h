// Repetition and sweep machinery on top of the simulator: the paper repeats
// every reconstruction 10 times and reports means with error bars.

#ifndef LDPM_SIM_EXPERIMENT_H_
#define LDPM_SIM_EXPERIMENT_H_

#include <string>
#include <vector>

#include "sim/simulator.h"

namespace ldpm {

/// Aggregated outcome of repeated runs of one configuration.
struct RepeatedResult {
  std::string protocol;
  SummaryStats mean_tv;  ///< distribution of per-run mean TV distances
  double bits_per_user = 0.0;
  int repetitions = 0;
};

/// Runs `repetitions` independent simulations (seeds options.seed,
/// options.seed + 1, ...), optionally across threads, and summarizes the
/// per-run mean TV distances.
StatusOr<RepeatedResult> RunRepeated(const BinaryDataset& source,
                                     const SimulationOptions& options,
                                     int repetitions, bool parallel = true);

/// printf-style fixed precision rendering used by the bench tables.
std::string Fixed(double value, int precision);

/// Renders "value ± err" with the given precision.
std::string WithError(double value, double err, int precision);

}  // namespace ldpm

#endif  // LDPM_SIM_EXPERIMENT_H_
