// Error metrics and summary statistics for experiments.

#ifndef LDPM_SIM_METRICS_H_
#define LDPM_SIM_METRICS_H_

#include <vector>

#include "core/contingency_table.h"
#include "core/status.h"

namespace ldpm {

/// Five-number-ish summary of a sample of measurements.
struct SummaryStats {
  double mean = 0.0;
  double stddev = 0.0;        ///< sample standard deviation (n-1)
  double standard_error = 0.0;///< stddev / sqrt(n)
  double min = 0.0;
  double max = 0.0;
  size_t count = 0;
};

/// Summarizes a non-empty sample.
StatusOr<SummaryStats> Summarize(const std::vector<double>& values);

/// L1 distance between two same-selector marginals (TV = L1 / 2).
StatusOr<double> L1Distance(const MarginalTable& a, const MarginalTable& b);

/// Maximum absolute per-cell error between two same-selector marginals.
StatusOr<double> MaxAbsoluteError(const MarginalTable& a,
                                  const MarginalTable& b);

}  // namespace ldpm

#endif  // LDPM_SIM_METRICS_H_
