#include "sim/simulator.h"

#include <chrono>

#include "core/marginal.h"

namespace ldpm {
namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

StatusOr<SimulationResult> RunSimulation(const BinaryDataset& source,
                                         const SimulationOptions& options) {
  if (source.size() == 0) {
    return Status::InvalidArgument("RunSimulation: empty source dataset");
  }
  if (options.num_users == 0) {
    return Status::InvalidArgument("RunSimulation: num_users must be > 0");
  }
  ProtocolConfig config = options.config;
  config.d = source.dimensions();

  const int eval_order =
      options.eval_order == 0 ? config.k : options.eval_order;
  if (eval_order < 1 || eval_order > config.k) {
    return Status::InvalidArgument(
        "RunSimulation: eval_order must lie in [1, k]");
  }

  auto protocol = CreateProtocol(options.kind, config);
  if (!protocol.ok()) return protocol.status();

  Rng rng(options.seed);
  const BinaryDataset population =
      source.SampleWithReplacement(options.num_users, rng);

  SimulationResult result;
  result.protocol = std::string((*protocol)->name());

  const auto encode_start = std::chrono::steady_clock::now();
  if (options.use_fast_path) {
    LDPM_RETURN_IF_ERROR((*protocol)->AbsorbPopulation(population.rows(), rng));
  } else {
    for (uint64_t row : population.rows()) {
      LDPM_RETURN_IF_ERROR((*protocol)->Absorb((*protocol)->Encode(row, rng)));
    }
  }
  result.encode_absorb_seconds = SecondsSince(encode_start);
  result.bits_per_user = (*protocol)->total_report_bits() /
                         static_cast<double>((*protocol)->reports_absorbed());

  const auto estimate_start = std::chrono::steady_clock::now();
  double tv_sum = 0.0;
  double tv_max = 0.0;
  int count = 0;
  for (uint64_t beta : KWaySelectors(config.d, eval_order)) {
    auto truth = population.Marginal(beta);
    if (!truth.ok()) return truth.status();
    auto estimate = (*protocol)->EstimateMarginal(beta);
    if (!estimate.ok()) return estimate.status();
    const double tv = truth->TotalVariationDistance(*estimate);
    tv_sum += tv;
    tv_max = std::max(tv_max, tv);
    ++count;
  }
  result.estimate_seconds = SecondsSince(estimate_start);
  result.mean_tv = tv_sum / static_cast<double>(count);
  result.max_tv = tv_max;
  result.num_marginals = count;
  return result;
}

}  // namespace ldpm
