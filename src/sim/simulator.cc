#include "sim/simulator.h"

#include <chrono>

#include "core/marginal.h"
#include "engine/collector.h"

namespace ldpm {
namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

StatusOr<SimulationResult> RunSimulation(const BinaryDataset& source,
                                         const SimulationOptions& options) {
  if (source.size() == 0) {
    return Status::InvalidArgument("RunSimulation: empty source dataset");
  }
  if (options.num_users == 0) {
    return Status::InvalidArgument("RunSimulation: num_users must be > 0");
  }
  ProtocolConfig config = options.config;
  config.d = source.dimensions();

  const int eval_order =
      options.eval_order == 0 ? config.k : options.eval_order;
  if (eval_order < 1 || eval_order > config.k) {
    return Status::InvalidArgument(
        "RunSimulation: eval_order must lie in [1, k]");
  }

  if (options.num_shards < 1) {
    return Status::InvalidArgument("RunSimulation: num_shards must be >= 1");
  }

  auto protocol = CreateProtocol(options.kind, config);
  if (!protocol.ok()) return protocol.status();

  Rng rng(options.seed);
  const BinaryDataset population =
      source.SampleWithReplacement(options.num_users, rng);

  SimulationResult result;
  result.protocol = std::string((*protocol)->name());

  // Sharded path: host the run as one collection of an engine::Collector
  // (worker threads with per-shard Rng streams), then answer queries from
  // the merged state.
  std::unique_ptr<engine::Collector> collector;
  engine::CollectionHandle sharded;
  if (options.num_shards > 1) {
    engine::CollectorOptions collector_options;
    collector_options.engine_defaults.num_shards = options.num_shards;
    // Continue the simulation stream rather than reusing options.seed:
    // seeding with the raw seed would derive the shards' perturbation
    // randomness from the same generator state that sampled the population.
    collector_options.engine_defaults.seed = rng();
    auto created = engine::Collector::Create(collector_options);
    if (!created.ok()) return created.status();
    collector = *std::move(created);
    auto handle = collector->Register("sim", options.kind, config);
    if (!handle.ok()) return handle.status();
    sharded = *std::move(handle);
  }

  const auto encode_start = std::chrono::steady_clock::now();
  if (sharded.valid()) {
    LDPM_RETURN_IF_ERROR(
        sharded.IngestPopulation(population.rows(), options.use_fast_path));
    LDPM_RETURN_IF_ERROR(sharded.Flush());
  } else if (options.use_fast_path) {
    LDPM_RETURN_IF_ERROR((*protocol)->AbsorbPopulation(population.rows(), rng));
  } else {
    for (uint64_t row : population.rows()) {
      LDPM_RETURN_IF_ERROR((*protocol)->Absorb((*protocol)->Encode(row, rng)));
    }
  }
  result.encode_absorb_seconds = SecondsSince(encode_start);
  if (sharded.valid()) {
    // Fold the merged shard state into the query-side aggregator.
    auto merged = sharded.aggregator().Merged();
    if (!merged.ok()) return merged.status();
    LDPM_RETURN_IF_ERROR((*protocol)->MergeFrom(**merged));
  }
  result.bits_per_user = (*protocol)->total_report_bits() /
                         static_cast<double>((*protocol)->reports_absorbed());
  if (result.encode_absorb_seconds > 0.0) {
    result.ingest_reports_per_second =
        static_cast<double>((*protocol)->reports_absorbed()) /
        result.encode_absorb_seconds;
  }

  const auto estimate_start = std::chrono::steady_clock::now();
  double tv_sum = 0.0;
  double tv_max = 0.0;
  int count = 0;
  for (uint64_t beta : KWaySelectors(config.d, eval_order)) {
    auto truth = population.Marginal(beta);
    if (!truth.ok()) return truth.status();
    auto estimate = (*protocol)->EstimateMarginal(beta);
    if (!estimate.ok()) return estimate.status();
    const double tv = truth->TotalVariationDistance(*estimate);
    tv_sum += tv;
    tv_max = std::max(tv_max, tv);
    ++count;
  }
  result.estimate_seconds = SecondsSince(estimate_start);
  result.mean_tv = tv_sum / static_cast<double>(count);
  result.max_tv = tv_max;
  result.num_marginals = count;
  return result;
}

}  // namespace ldpm
