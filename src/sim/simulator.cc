#include "sim/simulator.h"

#include <chrono>
#include <cmath>
#include <optional>

#include "core/encoding.h"
#include "core/marginal.h"
#include "engine/collector.h"
#include "protocols/inp_es_adapter.h"

namespace ldpm {
namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Reads categorical digits out of a sampled binary row: attribute i
/// takes its encoded width of row bits starting at the domain's bit
/// offset, indices wrapped over the source width (so narrow sources
/// still yield non-degenerate digits), folded mod r_i (invalid codes,
/// mirroring InpES Encode's own reduction).
std::vector<uint32_t> DeriveTuple(uint64_t row, int source_bits,
                                  const CategoricalDomain& domain) {
  std::vector<uint32_t> tuple(domain.num_attributes());
  int offset = 0;
  for (int i = 0; i < domain.num_attributes(); ++i) {
    uint64_t field = 0;
    for (int j = 0; j < domain.attribute_bits(i); ++j) {
      field |= ((row >> ((offset + j) % source_bits)) & 1u)
               << static_cast<unsigned>(j);
    }
    tuple[i] = static_cast<uint32_t>(field % domain.cardinality(i));
    offset += domain.attribute_bits(i);
  }
  return tuple;
}

/// Mixed-radix packing, attribute 0 the fastest digit — the user-value
/// format InpEsMarginalProtocol::Encode speaks.
uint64_t PackMixedRadix(const std::vector<uint32_t>& tuple,
                        const CategoricalDomain& domain) {
  uint64_t value = 0;
  uint64_t stride = 1;
  for (int i = 0; i < domain.num_attributes(); ++i) {
    value += tuple[i] * stride;
    stride *= domain.cardinality(i);
  }
  return value;
}

}  // namespace

StatusOr<SimulationResult> RunSimulation(const BinaryDataset& source,
                                         const SimulationOptions& options) {
  if (source.size() == 0) {
    return Status::InvalidArgument("RunSimulation: empty source dataset");
  }
  if (options.num_users == 0) {
    return Status::InvalidArgument("RunSimulation: num_users must be > 0");
  }
  ProtocolConfig config = options.config;
  const bool categorical = !options.cardinalities.empty();
  std::optional<CategoricalDomain> domain;
  if (categorical) {
    if (options.kind != ProtocolKind::kInpES) {
      return Status::InvalidArgument(
          "RunSimulation: cardinalities need ProtocolKind::kInpES — the "
          "binary protocols cannot host a categorical domain");
    }
    auto created = CategoricalDomain::Create(options.cardinalities);
    if (!created.ok()) return created.status();
    domain.emplace(*std::move(created));
    config.cardinalities = options.cardinalities;
    config.d = domain->num_attributes();
  } else {
    config.d = source.dimensions();
  }

  const int eval_order =
      options.eval_order == 0 ? config.k : options.eval_order;
  if (eval_order < 1 || eval_order > config.k) {
    return Status::InvalidArgument(
        "RunSimulation: eval_order must lie in [1, k]");
  }

  if (options.num_shards < 1) {
    return Status::InvalidArgument("RunSimulation: num_shards must be >= 1");
  }

  auto protocol = CreateProtocol(options.kind, config);
  if (!protocol.ok()) return protocol.status();

  Rng rng(options.seed);
  const BinaryDataset population =
      source.SampleWithReplacement(options.num_users, rng);

  // Categorical runs absorb the mixed-radix packings of tuples derived
  // from the sampled binary rows; binary runs absorb the rows verbatim.
  std::vector<std::vector<uint32_t>> tuples;
  std::vector<uint64_t> packed_values;
  if (categorical) {
    tuples.reserve(population.rows().size());
    packed_values.reserve(population.rows().size());
    for (uint64_t row : population.rows()) {
      tuples.push_back(DeriveTuple(row, source.dimensions(), *domain));
      packed_values.push_back(PackMixedRadix(tuples.back(), *domain));
    }
  }
  const std::vector<uint64_t>& absorb_rows =
      categorical ? packed_values : population.rows();

  SimulationResult result;
  result.protocol = std::string((*protocol)->name());

  // Sharded path: host the run as one collection of an engine::Collector
  // (worker threads with per-shard Rng streams), then answer queries from
  // the merged state.
  std::unique_ptr<engine::Collector> collector;
  engine::CollectionHandle sharded;
  if (options.num_shards > 1) {
    engine::CollectorOptions collector_options;
    collector_options.engine_defaults.num_shards = options.num_shards;
    // Continue the simulation stream rather than reusing options.seed:
    // seeding with the raw seed would derive the shards' perturbation
    // randomness from the same generator state that sampled the population.
    collector_options.engine_defaults.seed = rng();
    auto created = engine::Collector::Create(collector_options);
    if (!created.ok()) return created.status();
    collector = *std::move(created);
    auto handle = collector->Register("sim", options.kind, config);
    if (!handle.ok()) return handle.status();
    sharded = *std::move(handle);
  }

  const auto encode_start = std::chrono::steady_clock::now();
  if (sharded.valid()) {
    LDPM_RETURN_IF_ERROR(
        sharded.IngestPopulation(absorb_rows, options.use_fast_path));
    LDPM_RETURN_IF_ERROR(sharded.Flush());
  } else if (options.use_fast_path) {
    LDPM_RETURN_IF_ERROR((*protocol)->AbsorbPopulation(absorb_rows, rng));
  } else {
    for (uint64_t row : absorb_rows) {
      LDPM_RETURN_IF_ERROR((*protocol)->Absorb((*protocol)->Encode(row, rng)));
    }
  }
  result.encode_absorb_seconds = SecondsSince(encode_start);
  if (sharded.valid()) {
    // Fold the merged shard state into the query-side aggregator.
    auto merged = sharded.aggregator().Merged();
    if (!merged.ok()) return merged.status();
    LDPM_RETURN_IF_ERROR((*protocol)->MergeFrom(**merged));
  }
  result.bits_per_user = (*protocol)->total_report_bits() /
                         static_cast<double>((*protocol)->reports_absorbed());
  if (result.encode_absorb_seconds > 0.0) {
    result.ingest_reports_per_second =
        static_cast<double>((*protocol)->reports_absorbed()) /
        result.encode_absorb_seconds;
  }

  const auto estimate_start = std::chrono::steady_clock::now();
  double tv_sum = 0.0;
  double tv_max = 0.0;
  int count = 0;
  if (categorical) {
    // Score mixed-radix marginals of the derived tuples. Estimated mass
    // on invalid codes is error mass (the exact distribution has none).
    const auto* es =
        dynamic_cast<const InpEsMarginalProtocol*>(protocol->get());
    if (es == nullptr) {
      return Status::Internal(
          "RunSimulation: kInpES protocol is not the InpES adapter");
    }
    for (uint64_t beta : KWaySelectors(config.d, eval_order)) {
      std::vector<int> attrs;
      for (int i = 0; i < config.d; ++i) {
        if (beta & (uint64_t{1} << i)) attrs.push_back(i);
      }
      auto estimate = es->EstimateCategorical(attrs);
      if (!estimate.ok()) return estimate.status();
      std::vector<double> truth(estimate->probabilities.size(), 0.0);
      const double weight = 1.0 / static_cast<double>(tuples.size());
      for (const std::vector<uint32_t>& tuple : tuples) {
        size_t idx = 0;
        size_t stride = 1;
        for (int attribute : attrs) {
          idx += tuple[attribute] * stride;
          stride *= domain->cardinality(attribute);
        }
        truth[idx] += weight;
      }
      double l1 = estimate->invalid_mass;
      for (size_t i = 0; i < truth.size(); ++i) {
        l1 += std::abs(truth[i] - estimate->probabilities[i]);
      }
      const double tv = 0.5 * l1;
      tv_sum += tv;
      tv_max = std::max(tv_max, tv);
      ++count;
    }
  } else {
    for (uint64_t beta : KWaySelectors(config.d, eval_order)) {
      auto truth = population.Marginal(beta);
      if (!truth.ok()) return truth.status();
      auto estimate = (*protocol)->EstimateMarginal(beta);
      if (!estimate.ok()) return estimate.status();
      const double tv = truth->TotalVariationDistance(*estimate);
      tv_sum += tv;
      tv_max = std::max(tv_max, tv);
      ++count;
    }
  }
  result.estimate_seconds = SecondsSince(estimate_start);
  result.mean_tv = tv_sum / static_cast<double>(count);
  result.max_tv = tv_max;
  result.num_marginals = count;
  return result;
}

}  // namespace ldpm
