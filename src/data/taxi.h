// Synthetic NYC-taxi-like dataset (substitution for the paper's NYC TLC
// trip records; see DESIGN.md).
//
// The paper derives 8 binary attributes from Manhattan yellow-cab trips
// (its Table 1) and relies on their qualitative correlation structure
// (its Figure 3): strong positive association within the pairs
// (Night_pick, Night_drop), (Toll, Far), (CC, Tip), (M_pick, M_drop), and
// near-independence for (M_drop, CC), (Far, Night_pick),
// (Toll, Night_pick). The 2-way M_pick/M_drop marginal is the paper's
// Figure 2: [0.55, 0.15; 0.10, 0.20].
//
// This generator reproduces those moments with a latent-class model:
//   * a 4-way trip-route class fixes (M_pick, M_drop) at exactly the
//     Figure 2 proportions and drives trip distance (Far), which drives
//     Toll;
//   * an independent night latent drives both Night_pick and Night_drop;
//   * an independent card-user latent drives both CC and Tip.
// Independence between the three latents yields the near-zero pairs.

#ifndef LDPM_DATA_TAXI_H_
#define LDPM_DATA_TAXI_H_

#include <cstdint>

#include "data/dataset.h"

namespace ldpm {

/// Attribute indices of the taxi schema (Table 1 of the paper).
enum TaxiAttribute : int {
  kTaxiCC = 0,         ///< paid by credit card
  kTaxiToll = 1,       ///< paid a toll
  kTaxiFar = 2,        ///< trip distance >= 10 miles
  kTaxiNightPick = 3,  ///< pickup at/after 8 PM
  kTaxiNightDrop = 4,  ///< drop-off at/before 3 AM
  kTaxiMPick = 5,      ///< origin in Manhattan
  kTaxiMDrop = 6,      ///< destination in Manhattan
  kTaxiTip = 7,        ///< tip >= 25% of fare
};

/// Number of taxi attributes.
inline constexpr int kTaxiDimensions = 8;

/// Generates n synthetic trips. Deterministic given the seed.
StatusOr<BinaryDataset> GenerateTaxiDataset(size_t n, uint64_t seed);

/// The attribute-pair lists the paper's association test focuses on
/// (Figure 7): three strongly dependent pairs and three ~independent pairs.
struct TaxiTestPairs {
  struct Pair {
    int a;
    int b;
    const char* label;
    bool expected_dependent;
  };
  static const std::vector<Pair>& All();
};

}  // namespace ldpm

#endif  // LDPM_DATA_TAXI_H_
