// The binary dataset substrate: N users x d binary attributes, each row
// packed into a uint64_t (attribute 0 = bit 0).

#ifndef LDPM_DATA_DATASET_H_
#define LDPM_DATA_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/contingency_table.h"
#include "core/random.h"
#include "core/status.h"

namespace ldpm {

/// An immutable-ish collection of users' packed attribute rows with
/// optional attribute names.
class BinaryDataset {
 public:
  /// Wraps rows over a d-attribute domain. Every row must fit in d bits;
  /// `names`, if given, must have exactly d entries.
  static StatusOr<BinaryDataset> Create(int d, std::vector<uint64_t> rows,
                                        std::vector<std::string> names = {});

  int dimensions() const { return d_; }
  size_t size() const { return rows_.size(); }
  const std::vector<uint64_t>& rows() const { return rows_; }
  const std::vector<std::string>& attribute_names() const { return names_; }

  /// Name of one attribute ("attr<i>" when unnamed).
  std::string attribute_name(int i) const;

  /// Exact marginal of the dataset for selector beta (O(N)).
  StatusOr<MarginalTable> Marginal(uint64_t beta) const;

  /// Exact empirical mean of one attribute.
  StatusOr<double> AttributeMean(int attribute) const;

  /// Dense normalized histogram over the 2^d cells. Requires
  /// d <= kMaxDenseDimensions.
  StatusOr<ContingencyTable> Histogram() const;

  /// Draws n rows uniformly with replacement (the paper's per-experiment
  /// population sampling).
  BinaryDataset SampleWithReplacement(size_t n, Rng& rng) const;

  /// Widens the dataset to `target_d` attributes by duplicating columns
  /// cyclically (the paper's Figure 6 device for large d). Duplicated
  /// columns inherit names with a "#<copy>" suffix.
  StatusOr<BinaryDataset> DuplicateColumns(int target_d) const;

 private:
  BinaryDataset(int d, std::vector<uint64_t> rows,
                std::vector<std::string> names)
      : d_(d), rows_(std::move(rows)), names_(std::move(names)) {}

  int d_;
  std::vector<uint64_t> rows_;
  std::vector<std::string> names_;
};

}  // namespace ldpm

#endif  // LDPM_DATA_DATASET_H_
