#include "data/synthetic.h"

#include <cmath>
#include <numeric>
#include <string>

#include "core/bits.h"

namespace ldpm {

StatusOr<BinaryDataset> GenerateIndependent(size_t n,
                                            const std::vector<double>& probs,
                                            uint64_t seed) {
  const int d = static_cast<int>(probs.size());
  if (d < 1 || d > kMaxDimensions) {
    return Status::InvalidArgument("GenerateIndependent: bad dimension");
  }
  for (double p : probs) {
    if (!(p >= 0.0 && p <= 1.0)) {
      return Status::InvalidArgument(
          "GenerateIndependent: probabilities must lie in [0, 1]");
    }
  }
  Rng rng(seed);
  std::vector<uint64_t> rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    uint64_t row = 0;
    for (int j = 0; j < d; ++j) {
      if (rng.Bernoulli(probs[j])) row |= uint64_t{1} << j;
    }
    rows.push_back(row);
  }
  return BinaryDataset::Create(d, std::move(rows));
}

StatusOr<BinaryDataset> GenerateLightlySkewed(size_t n, int d, double skew,
                                              uint64_t seed) {
  if (d < 1 || d > kMaxDenseDimensions) {
    return Status::InvalidArgument("GenerateLightlySkewed: bad dimension");
  }
  if (!(skew >= 0.0) || !std::isfinite(skew)) {
    return Status::InvalidArgument("GenerateLightlySkewed: bad skew");
  }
  Rng rng(seed);
  const uint64_t cells = uint64_t{1} << d;

  // Zipf-style weights over a random permutation of the cells.
  std::vector<uint64_t> perm(cells);
  std::iota(perm.begin(), perm.end(), 0);
  for (uint64_t i = cells - 1; i > 0; --i) {
    std::swap(perm[i], perm[rng.UniformInt(i + 1)]);
  }
  std::vector<double> weights(cells);
  for (uint64_t rank = 0; rank < cells; ++rank) {
    weights[perm[rank]] = std::pow(static_cast<double>(rank + 1), -skew);
  }
  auto sampler = AliasSampler::Create(weights);
  if (!sampler.ok()) return sampler.status();

  std::vector<uint64_t> rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) rows.push_back(sampler->Sample(rng));
  return BinaryDataset::Create(d, std::move(rows));
}

StatusOr<PlantedTree> GeneratePlantedTree(size_t n, int d, double flip,
                                          uint64_t seed) {
  if (d < 2 || d > kMaxDimensions) {
    return Status::InvalidArgument("GeneratePlantedTree: bad dimension");
  }
  if (!(flip > 0.0) || !(flip < 0.5)) {
    return Status::InvalidArgument(
        "GeneratePlantedTree: flip must lie in (0, 0.5)");
  }
  Rng rng(seed);

  // Random recursive tree: node v > 0 attaches to a uniform earlier node,
  // so parents always precede children and sampling is a single pass.
  std::vector<int> parent(d, -1);
  for (int v = 1; v < d; ++v) {
    parent[v] = static_cast<int>(rng.UniformInt(static_cast<uint64_t>(v)));
  }

  std::vector<uint64_t> rows;
  rows.reserve(n);
  std::vector<int> bits(d, 0);
  for (size_t i = 0; i < n; ++i) {
    bits[0] = rng.Bernoulli(0.5) ? 1 : 0;
    for (int v = 1; v < d; ++v) {
      const int pv = bits[parent[v]];
      bits[v] = rng.Bernoulli(flip) ? 1 - pv : pv;
    }
    uint64_t row = 0;
    for (int v = 0; v < d; ++v) {
      if (bits[v]) row |= uint64_t{1} << v;
    }
    rows.push_back(row);
  }

  // Exact per-edge MI of a binary symmetric channel with uniform input:
  // ln 2 - H(flip).
  const double edge_mi = std::log(2.0) + flip * std::log(flip) +
                         (1.0 - flip) * std::log(1.0 - flip);
  ChowLiuTree tree;
  tree.d = d;
  for (int v = 1; v < d; ++v) {
    tree.edges.push_back({parent[v], v, edge_mi});
    tree.total_mutual_information += edge_mi;
  }

  auto data = BinaryDataset::Create(d, std::move(rows));
  if (!data.ok()) return data.status();
  return PlantedTree{*std::move(data), std::move(tree)};
}

}  // namespace ldpm
