#include "data/dataset.h"

#include <string>

#include "core/bits.h"
#include "core/marginal.h"

namespace ldpm {

StatusOr<BinaryDataset> BinaryDataset::Create(int d,
                                              std::vector<uint64_t> rows,
                                              std::vector<std::string> names) {
  if (d < 1 || d > kMaxDimensions) {
    return Status::InvalidArgument("BinaryDataset: d must be in [1, " +
                                   std::to_string(kMaxDimensions) + "]");
  }
  if (!names.empty() && static_cast<int>(names.size()) != d) {
    return Status::InvalidArgument(
        "BinaryDataset: attribute name count must equal d");
  }
  if (d < 64) {
    const uint64_t limit = uint64_t{1} << d;
    for (uint64_t row : rows) {
      if (row >= limit) {
        return Status::OutOfRange("BinaryDataset: row exceeds the d-bit domain");
      }
    }
  }
  return BinaryDataset(d, std::move(rows), std::move(names));
}

std::string BinaryDataset::attribute_name(int i) const {
  LDPM_DCHECK(i >= 0 && i < d_);
  if (i < static_cast<int>(names_.size())) return names_[i];
  return "attr" + std::to_string(i);
}

StatusOr<MarginalTable> BinaryDataset::Marginal(uint64_t beta) const {
  return MarginalFromRows(rows_, d_, beta);
}

StatusOr<double> BinaryDataset::AttributeMean(int attribute) const {
  if (attribute < 0 || attribute >= d_) {
    return Status::OutOfRange("BinaryDataset: attribute index out of range");
  }
  if (rows_.empty()) {
    return Status::FailedPrecondition("BinaryDataset: empty dataset");
  }
  uint64_t count = 0;
  for (uint64_t row : rows_) count += (row >> attribute) & 1;
  return static_cast<double>(count) / static_cast<double>(rows_.size());
}

StatusOr<ContingencyTable> BinaryDataset::Histogram() const {
  auto table = ContingencyTable::Zero(d_);
  if (!table.ok()) return table.status();
  if (rows_.empty()) {
    return Status::FailedPrecondition("BinaryDataset: empty dataset");
  }
  const double w = 1.0 / static_cast<double>(rows_.size());
  for (uint64_t row : rows_) table->Add(row, w);
  return table;
}

BinaryDataset BinaryDataset::SampleWithReplacement(size_t n, Rng& rng) const {
  LDPM_CHECK(!rows_.empty());
  std::vector<uint64_t> sampled;
  sampled.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    sampled.push_back(rows_[rng.UniformInt(rows_.size())]);
  }
  return BinaryDataset(d_, std::move(sampled), names_);
}

StatusOr<BinaryDataset> BinaryDataset::DuplicateColumns(int target_d) const {
  if (target_d < d_) {
    return Status::InvalidArgument(
        "DuplicateColumns: target dimension below current");
  }
  if (target_d > kMaxDimensions) {
    return Status::InvalidArgument("DuplicateColumns: target dimension too large");
  }
  if (target_d == d_) return *this;

  std::vector<uint64_t> wide;
  wide.reserve(rows_.size());
  for (uint64_t row : rows_) {
    uint64_t out = row;
    for (int b = d_; b < target_d; ++b) {
      const int src = b % d_;
      if ((row >> src) & 1) out |= uint64_t{1} << b;
    }
    wide.push_back(out);
  }
  std::vector<std::string> names;
  if (!names_.empty()) {
    names.reserve(target_d);
    for (int b = 0; b < target_d; ++b) {
      const int src = b % d_;
      const int copy = b / d_;
      names.push_back(copy == 0 ? names_[src]
                                : names_[src] + "#" + std::to_string(copy));
    }
  }
  return BinaryDataset(target_d, std::move(wide), std::move(names));
}

}  // namespace ldpm
