#include "data/taxi.h"

namespace ldpm {
namespace {

// Route classes and their probabilities: exactly the Figure 2 marginal.
// Order: (M_pick, M_drop) = (1,1), (1,0), (0,1), (0,0).
constexpr double kRouteProbs[4] = {0.55, 0.15, 0.10, 0.20};

// P(Far = 1 | route class): Manhattan-internal trips are short; trips
// touching the outer boroughs/airports are much longer.
constexpr double kFarGivenRoute[4] = {0.04, 0.38, 0.38, 0.60};

// Toll depends on distance (bridges/tunnels on long trips).
constexpr double kTollGivenFar = 0.72;
constexpr double kTollGivenNear = 0.04;

// Night latent and its two noisy observations.
constexpr double kNightRate = 0.35;
constexpr double kNightPickFlip = 0.05;
constexpr double kNightDropFlip = 0.08;

// Card-user latent and its two noisy observations.
constexpr double kCardRate = 0.60;
constexpr double kCcFlip = 0.05;
constexpr double kTipFlip = 0.15;

}  // namespace

StatusOr<BinaryDataset> GenerateTaxiDataset(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint64_t> rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    // Route class (drives M_pick, M_drop, Far, Toll).
    const double u = rng.UniformDouble();
    int route = 3;
    double acc = 0.0;
    for (int c = 0; c < 4; ++c) {
      acc += kRouteProbs[c];
      if (u < acc) {
        route = c;
        break;
      }
    }
    const bool m_pick = route == 0 || route == 1;
    const bool m_drop = route == 0 || route == 2;
    const bool far = rng.Bernoulli(kFarGivenRoute[route]);
    const bool toll = rng.Bernoulli(far ? kTollGivenFar : kTollGivenNear);

    // Night latent (drives both pickup/drop-off night flags).
    const bool night = rng.Bernoulli(kNightRate);
    const bool night_pick = rng.Bernoulli(kNightPickFlip) ? !night : night;
    const bool night_drop = rng.Bernoulli(kNightDropFlip) ? !night : night;

    // Card-user latent (drives payment mode and tipping).
    const bool card = rng.Bernoulli(kCardRate);
    const bool cc = rng.Bernoulli(kCcFlip) ? !card : card;
    const bool tip = rng.Bernoulli(kTipFlip) ? !card : card;

    uint64_t row = 0;
    row |= uint64_t{cc} << kTaxiCC;
    row |= uint64_t{toll} << kTaxiToll;
    row |= uint64_t{far} << kTaxiFar;
    row |= uint64_t{night_pick} << kTaxiNightPick;
    row |= uint64_t{night_drop} << kTaxiNightDrop;
    row |= uint64_t{m_pick} << kTaxiMPick;
    row |= uint64_t{m_drop} << kTaxiMDrop;
    row |= uint64_t{tip} << kTaxiTip;
    rows.push_back(row);
  }
  return BinaryDataset::Create(
      kTaxiDimensions, std::move(rows),
      {"CC", "Toll", "Far", "Night_pick", "Night_drop", "M_pick", "M_drop",
       "Tip"});
}

const std::vector<TaxiTestPairs::Pair>& TaxiTestPairs::All() {
  static const std::vector<Pair> kPairs = {
      {kTaxiNightPick, kTaxiNightDrop, "(Night_pick, Night_drop)", true},
      {kTaxiToll, kTaxiFar, "(Toll, Far)", true},
      {kTaxiCC, kTaxiTip, "(CC, Tip)", true},
      {kTaxiMDrop, kTaxiCC, "(M_drop, CC)", false},
      {kTaxiFar, kTaxiNightPick, "(Far, Night_pick)", false},
      {kTaxiToll, kTaxiNightPick, "(Toll, Night_pick)", false},
  };
  return kPairs;
}

}  // namespace ldpm
