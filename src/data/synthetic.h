// Generic synthetic dataset generators: independent attributes, the
// lightly-skewed multinomial of the paper's Appendix B.2 (Figure 10), and a
// planted dependency tree for testing structure learners.

#ifndef LDPM_DATA_SYNTHETIC_H_
#define LDPM_DATA_SYNTHETIC_H_

#include <cstdint>
#include <vector>

#include "analysis/chow_liu.h"
#include "data/dataset.h"

namespace ldpm {

/// Independent attributes: bit j is Bernoulli(probs[j]).
StatusOr<BinaryDataset> GenerateIndependent(size_t n,
                                            const std::vector<double>& probs,
                                            uint64_t seed);

/// A lightly skewed multinomial over the full 2^d-cell domain: cell
/// probabilities proportional to rank^{-skew} under a random (seeded)
/// permutation of the cells, so the skew is not aligned with the bit
/// structure. skew ~ 1 matches the appendix's "lightly skewed" setting.
/// Requires d <= kMaxDenseDimensions.
StatusOr<BinaryDataset> GenerateLightlySkewed(size_t n, int d, double skew,
                                              uint64_t seed);

/// A planted dependency tree together with data sampled from it.
struct PlantedTree {
  BinaryDataset data;
  ChowLiuTree tree;  ///< the generating structure with exact edge MIs
};

/// Samples from a random tree-structured distribution: a uniform random
/// spanning tree, root ~ Bernoulli(1/2), each child equal to its parent
/// with probability 1 - flip. flip in (0, 0.5) gives informative edges.
StatusOr<PlantedTree> GeneratePlantedTree(size_t n, int d, double flip,
                                          uint64_t seed);

}  // namespace ldpm

#endif  // LDPM_DATA_SYNTHETIC_H_
