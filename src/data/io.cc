#include "data/io.h"

#include <fstream>
#include <sstream>

#include "core/bits.h"

namespace ldpm {
namespace {

std::string Trim(const std::string& s) {
  size_t begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  size_t end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  std::istringstream stream(line);
  while (std::getline(stream, cell, ',')) cells.push_back(Trim(cell));
  if (!line.empty() && line.back() == ',') cells.push_back("");
  return cells;
}

}  // namespace

StatusOr<BinaryDataset> ParseCsvDataset(const std::string& text,
                                        bool has_header) {
  std::istringstream stream(text);
  std::string line;
  std::vector<std::string> names;
  std::vector<uint64_t> rows;
  int d = -1;
  size_t line_number = 0;

  while (std::getline(stream, line)) {
    ++line_number;
    const std::string trimmed = Trim(line);
    if (trimmed.empty()) continue;
    const std::vector<std::string> cells = SplitCsvLine(trimmed);

    if (has_header && names.empty() && d < 0) {
      names = cells;
      d = static_cast<int>(cells.size());
      if (d < 1 || d > kMaxDimensions) {
        return Status::InvalidArgument("CSV: header arity out of range");
      }
      continue;
    }
    if (d < 0) {
      d = static_cast<int>(cells.size());
      if (d < 1 || d > kMaxDimensions) {
        return Status::InvalidArgument("CSV: row arity out of range");
      }
    }
    if (static_cast<int>(cells.size()) != d) {
      return Status::InvalidArgument(
          "CSV: line " + std::to_string(line_number) + " has " +
          std::to_string(cells.size()) + " cells, expected " +
          std::to_string(d));
    }
    uint64_t row = 0;
    for (int j = 0; j < d; ++j) {
      if (cells[j] == "1") {
        row |= uint64_t{1} << j;
      } else if (cells[j] != "0") {
        return Status::InvalidArgument(
            "CSV: line " + std::to_string(line_number) + " cell " +
            std::to_string(j) + " is '" + cells[j] + "', expected 0 or 1");
      }
    }
    rows.push_back(row);
  }
  if (d < 0) {
    return Status::InvalidArgument("CSV: no data found");
  }
  return BinaryDataset::Create(d, std::move(rows), std::move(names));
}

std::string WriteCsvDataset(const BinaryDataset& dataset) {
  std::ostringstream out;
  if (!dataset.attribute_names().empty()) {
    for (int j = 0; j < dataset.dimensions(); ++j) {
      if (j) out << ",";
      out << dataset.attribute_name(j);
    }
    out << "\n";
  }
  for (uint64_t row : dataset.rows()) {
    for (int j = 0; j < dataset.dimensions(); ++j) {
      if (j) out << ",";
      out << ((row >> j) & 1);
    }
    out << "\n";
  }
  return out.str();
}

StatusOr<BinaryDataset> LoadCsvDataset(const std::string& path,
                                       bool has_header) {
  std::ifstream file(path);
  if (!file) {
    return Status::NotFound("cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return ParseCsvDataset(buffer.str(), has_header);
}

Status SaveCsvDataset(const BinaryDataset& dataset, const std::string& path) {
  std::ofstream file(path);
  if (!file) {
    return Status::InvalidArgument("cannot write " + path);
  }
  file << WriteCsvDataset(dataset);
  if (!file) {
    return Status::Internal("write to " + path + " failed");
  }
  return Status::OK();
}

}  // namespace ldpm
