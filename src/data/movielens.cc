#include "data/movielens.h"

#include <cmath>
#include <string>

namespace ldpm {
namespace {

constexpr const char* kGenreNames[kMovielensGenres] = {
    "Drama",   "Comedy",  "Thriller", "Action",    "Romance",   "Adventure",
    "Crime",   "Sci-Fi",  "Horror",   "Fantasy",   "Children",  "Mystery",
    "Musical", "War",     "Western",  "Animation", "Film-Noir",
};

// Base rate pi_g of rating at least one top-1000 movie per genre; decays
// from mainstream to niche.
constexpr double kBaseRates[kMovielensGenres] = {
    0.82, 0.78, 0.66, 0.62, 0.55, 0.52, 0.47, 0.44, 0.36,
    0.33, 0.30, 0.28, 0.22, 0.20, 0.17, 0.16, 0.12,
};

// Coupling between the activity latent and every genre; larger values give
// stronger positive pairwise correlation.
constexpr double kActivityCoupling = 1.2;

double Sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }
double Logit(double p) { return std::log(p / (1.0 - p)); }

}  // namespace

StatusOr<BinaryDataset> GenerateMovielensDataset(size_t n, int d,
                                                 uint64_t seed) {
  if (d < 1 || d > kMovielensGenres) {
    return Status::InvalidArgument(
        "GenerateMovielensDataset: d must be in [1, " +
        std::to_string(kMovielensGenres) +
        "]; widen with DuplicateColumns beyond that");
  }
  Rng rng(seed);
  std::vector<uint64_t> rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const double activity = rng.Gaussian();
    uint64_t row = 0;
    for (int g = 0; g < d; ++g) {
      const double p =
          Sigmoid(Logit(kBaseRates[g]) + kActivityCoupling * activity);
      if (rng.Bernoulli(p)) row |= uint64_t{1} << g;
    }
    rows.push_back(row);
  }
  std::vector<std::string> names;
  names.reserve(d);
  for (int g = 0; g < d; ++g) names.emplace_back(kGenreNames[g]);
  return BinaryDataset::Create(d, std::move(rows), std::move(names));
}

}  // namespace ldpm
