// CSV import/export for binary datasets — the adoption path for running
// the protocols on real data (e.g. an actual NYC-taxi extraction).
//
// Format: an optional header row with attribute names, then one row per
// user with d comma-separated 0/1 values. Whitespace around cells is
// tolerated; anything else is rejected with a precise error.

#ifndef LDPM_DATA_IO_H_
#define LDPM_DATA_IO_H_

#include <string>

#include "data/dataset.h"

namespace ldpm {

/// Parses CSV text into a dataset. When `has_header` the first row supplies
/// attribute names; otherwise attributes are unnamed and d is inferred from
/// the first data row.
StatusOr<BinaryDataset> ParseCsvDataset(const std::string& text,
                                        bool has_header = true);

/// Renders a dataset back to CSV (header included when names exist).
std::string WriteCsvDataset(const BinaryDataset& dataset);

/// Reads a dataset from a file path.
StatusOr<BinaryDataset> LoadCsvDataset(const std::string& path,
                                       bool has_header = true);

/// Writes a dataset to a file path.
Status SaveCsvDataset(const BinaryDataset& dataset, const std::string& path);

}  // namespace ldpm

#endif  // LDPM_DATA_IO_H_
