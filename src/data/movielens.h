// Synthetic MovieLens-like dataset (substitution for the paper's MovieLens
// 20M genre-preference derivation; see DESIGN.md).
//
// The paper assigns each user a bit per genre: 1 iff the user rated one of
// the genre's top-1000 movies. The resulting vectors have heterogeneous
// per-genre popularity and *positive* correlation between almost all genre
// pairs (active raters touch many genres). This generator reproduces those
// moments with a latent user-activity model:
//
//   z_i ~ N(0, 1)            (user activity)
//   P[bit_g = 1 | z_i] = sigmoid( logit(pi_g) + s * z_i )
//
// with per-genre base rates pi_g taken to decay from mainstream (Drama,
// Comedy) to niche (Film-Noir), and coupling strength s = 1.2.

#ifndef LDPM_DATA_MOVIELENS_H_
#define LDPM_DATA_MOVIELENS_H_

#include <cstdint>

#include "data/dataset.h"

namespace ldpm {

/// The 17 genre labels (in declining popularity in our calibration).
inline constexpr int kMovielensGenres = 17;

/// Generates n users over the first `d` genres (1 <= d <= kMovielensGenres).
/// Deterministic given the seed. For d beyond kMovielensGenres, generate at
/// 17 and use BinaryDataset::DuplicateColumns (as the paper does).
StatusOr<BinaryDataset> GenerateMovielensDataset(size_t n, int d,
                                                 uint64_t seed);

}  // namespace ldpm

#endif  // LDPM_DATA_MOVIELENS_H_
