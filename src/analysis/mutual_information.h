// Entropy and mutual information over marginal tables (Section 6.2).

#ifndef LDPM_ANALYSIS_MUTUAL_INFORMATION_H_
#define LDPM_ANALYSIS_MUTUAL_INFORMATION_H_

#include "core/contingency_table.h"
#include "core/status.h"

namespace ldpm {

/// Shannon entropy (in nats) of a marginal table treated as a distribution.
/// Negative cells are clamped to zero and the table renormalized first, so
/// noisy private estimates are handled gracefully.
double Entropy(const MarginalTable& table);

/// Mutual information (in nats) between the two attributes of a 2-way
/// marginal:
///   MI(A,B) = sum_{i,j} p(i,j) ln( p(i,j) / (p(i) p(j)) )
/// Noisy inputs are projected onto the simplex first. Always >= 0.
StatusOr<double> MutualInformation(const MarginalTable& joint);

/// Mutual information in bits (log base 2).
StatusOr<double> MutualInformationBits(const MarginalTable& joint);

}  // namespace ldpm

#endif  // LDPM_ANALYSIS_MUTUAL_INFORMATION_H_
