// Chow-Liu dependency-tree learning (Section 6.2).
//
// Chow & Liu (1968): the tree-structured distribution closest in KL
// divergence to the data is the maximum-weight spanning tree of the
// complete graph whose edge weights are pairwise mutual informations. With
// private 2-way marginals as input this gives the paper's Bayesian-modeling
// application (Figure 8): compare the *true* total MI of the tree learned
// from private marginals against the non-private tree.

#ifndef LDPM_ANALYSIS_CHOW_LIU_H_
#define LDPM_ANALYSIS_CHOW_LIU_H_

#include <functional>
#include <vector>

#include "core/contingency_table.h"
#include "core/status.h"

namespace ldpm {

/// One edge of a learned dependency tree.
struct ChowLiuEdge {
  int a = 0;
  int b = 0;
  double mutual_information = 0.0;  ///< the weight used when learning
};

/// A learned dependency tree over d attributes: d-1 edges (or fewer if MI
/// weights were all zero and ties broke arbitrarily — still a spanning
/// tree, just with zero-weight edges).
struct ChowLiuTree {
  int d = 0;
  std::vector<ChowLiuEdge> edges;
  /// Sum of edge mutual informations under the weights used for learning.
  double total_mutual_information = 0.0;
};

/// Learns the maximum-MI spanning tree from a full pairwise MI matrix.
/// `mi` must be a symmetric d x d matrix with non-negative entries.
/// O(d^2) (Prim's algorithm on a dense graph).
StatusOr<ChowLiuTree> BuildChowLiuTree(
    const std::vector<std::vector<double>>& mi);

/// Callback supplying 2-way marginals by selector; plugged with either
/// exact marginals or a protocol's EstimateMarginal.
using PairwiseMarginalProvider =
    std::function<StatusOr<MarginalTable>(uint64_t beta)>;

/// Computes all C(d,2) pairwise MIs from a marginal provider and learns the
/// tree.
StatusOr<ChowLiuTree> BuildChowLiuTreeFromMarginals(
    int d, const PairwiseMarginalProvider& provider);

/// Re-scores a tree's edges against reference (e.g. exact) pairwise MI:
/// returns the total *reference* MI of the tree's edge set. This is the
/// Figure 8 metric: how much true dependence the privately learned
/// structure captures.
StatusOr<double> ScoreTreeAgainst(const ChowLiuTree& tree,
                                  const std::vector<std::vector<double>>& reference_mi);

}  // namespace ldpm

#endif  // LDPM_ANALYSIS_CHOW_LIU_H_
