// Consistency post-processing for collections of estimated marginals.
//
// The marginal-perturbation protocols (MargRR/MargPS/MargHT) estimate each
// k-way marginal independently, so two estimates that overlap on a common
// attribute subset generally *disagree* about it — an artifact downstream
// consumers (OLAP, model fitting) cannot tolerate. Barak et al.'s classic
// observation (which the paper builds on for Lemma 3.7) is that marginals
// live in the span of the low-order Fourier coefficients, so enforcing a
// single shared coefficient vector makes every reconstruction mutually
// consistent by construction.
//
// MakeConsistent fits that shared vector: each input marginal implies an
// estimate of every coefficient alpha ⪯ beta (its own Walsh-Hadamard
// transform), the per-alpha estimates are combined by weighted averaging
// (the least-squares solution under per-marginal weights), and every
// requested marginal is rebuilt from the common coefficients via
// Lemma 3.7. Exact inputs pass through unchanged; InpHT estimates are
// already consistent and are fixed points of this operation.

#ifndef LDPM_ANALYSIS_CONSISTENCY_H_
#define LDPM_ANALYSIS_CONSISTENCY_H_

#include <vector>

#include "core/hadamard.h"

namespace ldpm {

/// Fits the shared low-order coefficient vector implied by a set of
/// marginal estimates over the same d-attribute domain. `weights`, if
/// nonempty, must match `marginals` in length and weights each marginal's
/// vote (e.g. by its report count); empty means equal weights. The zero
/// coefficient is fixed at 1 (a distribution's constant coefficient).
StatusOr<FourierCoefficients> FitSharedCoefficients(
    const std::vector<MarginalTable>& marginals, int d,
    const std::vector<double>& weights = {});

/// Rebuilds every input marginal from the shared fitted coefficients. The
/// outputs exactly agree on all overlaps: marginalizing any two outputs to
/// a common sub-selector gives identical tables.
StatusOr<std::vector<MarginalTable>> MakeConsistent(
    const std::vector<MarginalTable>& marginals, int d,
    const std::vector<double>& weights = {});

}  // namespace ldpm

#endif  // LDPM_ANALYSIS_CONSISTENCY_H_
