// Tree-structured Bayesian models fitted from (private) marginals — the
// payoff of the paper's Section 6.2 application.
//
// Chow & Liu's result is that the best tree-structured approximation of a
// joint distribution multiplies conditional probability tables (CPTs) along
// a spanning tree: P(x) = P(x_root) * prod_edges P(x_child | x_parent).
// Every CPT derives from a 2-way marginal, so the entire high-dimensional
// model can be fitted from exactly the statistics the LDP protocols
// release. TreeModel does that fitting, and then supports the downstream
// tasks the paper's motivation lists: evaluating joint probabilities,
// scoring held-out data, and generating synthetic populations.

#ifndef LDPM_ANALYSIS_TREE_MODEL_H_
#define LDPM_ANALYSIS_TREE_MODEL_H_

#include <memory>
#include <vector>

#include "analysis/chow_liu.h"
#include "core/random.h"

namespace ldpm {

/// A fitted binary tree-structured distribution over d attributes.
class TreeModel {
 public:
  /// Fits CPTs for the given tree structure from a pairwise-marginal
  /// provider (exact dataset marginals or a protocol's EstimateMarginal).
  /// Marginals are projected to the simplex and conditionals floored at
  /// `smoothing` to keep the model proper under noise.
  static StatusOr<TreeModel> Fit(const ChowLiuTree& tree,
                                 const PairwiseMarginalProvider& provider,
                                 double smoothing = 1e-6);

  /// Learns the structure with Chow-Liu *and* fits the CPTs, all from the
  /// same provider.
  static StatusOr<TreeModel> LearnAndFit(
      int d, const PairwiseMarginalProvider& provider,
      double smoothing = 1e-6);

  int dimensions() const { return d_; }
  const ChowLiuTree& tree() const { return tree_; }

  /// P[row] under the model; row packs the d attribute bits.
  double JointProbability(uint64_t row) const;

  /// Mean log-likelihood (nats per row) of a dataset under the model.
  StatusOr<double> MeanLogLikelihood(const std::vector<uint64_t>& rows) const;

  /// Draws n rows from the model.
  std::vector<uint64_t> Sample(size_t n, Rng& rng) const;

  /// Marginal mean P[attribute = 1] implied by the model.
  StatusOr<double> AttributeMean(int attribute) const;

  /// One fitted conditional probability table, the release format of the
  /// model (net::QueryServer's /v1/model serves these verbatim).
  struct CptEntry {
    int attribute = 0;
    /// Parent attribute in the tree; -1 for the root.
    int parent = -1;
    /// P[attribute = 1] — the root's unconditional table (parent == -1).
    double p_root = 0.5;
    /// P[attribute = 1 | parent = 0], P[attribute = 1 | parent = 1].
    double p_given_parent[2] = {0.5, 0.5};
  };

  /// Every node's CPT in topological order (parents before children).
  std::vector<CptEntry> Cpts() const;

 private:
  struct Node {
    int parent = -1;          // -1 for the root
    double p_root = 0.5;      // P[x = 1] if root
    // P[x = 1 | parent = 0], P[x = 1 | parent = 1] otherwise.
    double p_given_parent[2] = {0.5, 0.5};
  };

  TreeModel(int d, ChowLiuTree tree, std::vector<Node> nodes,
            std::vector<int> order)
      : d_(d),
        tree_(std::move(tree)),
        nodes_(std::move(nodes)),
        topological_order_(std::move(order)) {}

  int d_;
  ChowLiuTree tree_;
  std::vector<Node> nodes_;
  std::vector<int> topological_order_;  // parents before children
};

}  // namespace ldpm

#endif  // LDPM_ANALYSIS_TREE_MODEL_H_
