#include "analysis/correlation.h"

#include <cmath>
#include <cstdio>

#include "core/bits.h"

namespace ldpm {

StatusOr<double> PhiCoefficient(const MarginalTable& joint) {
  if (joint.order() != 2) {
    return Status::InvalidArgument("PhiCoefficient: requires a 2-way marginal");
  }
  MarginalTable cleaned = joint;
  cleaned.ProjectToSimplex();
  const double p00 = cleaned.at_compact(0);
  const double p10 = cleaned.at_compact(1);
  const double p01 = cleaned.at_compact(2);
  const double p11 = cleaned.at_compact(3);
  const double pa = p10 + p11;
  const double pb = p01 + p11;
  const double denom = pa * (1.0 - pa) * pb * (1.0 - pb);
  if (denom <= 0.0) return 0.0;
  return (p11 * p00 - p10 * p01) / std::sqrt(denom);
}

StatusOr<std::vector<std::vector<double>>> CorrelationMatrix(
    const std::vector<uint64_t>& rows, int d) {
  if (d < 1 || d > kMaxDimensions) {
    return Status::InvalidArgument("CorrelationMatrix: bad dimension");
  }
  if (rows.empty()) {
    return Status::InvalidArgument("CorrelationMatrix: empty dataset");
  }
  const double n = static_cast<double>(rows.size());

  // Single pass: per-attribute means and pairwise co-occurrence counts.
  std::vector<double> mean(d, 0.0);
  std::vector<std::vector<double>> co(d, std::vector<double>(d, 0.0));
  for (uint64_t row : rows) {
    for (int a = 0; a < d; ++a) {
      if (!((row >> a) & 1)) continue;
      mean[a] += 1.0;
      for (int b = a + 1; b < d; ++b) {
        if ((row >> b) & 1) co[a][b] += 1.0;
      }
    }
  }
  for (int a = 0; a < d; ++a) mean[a] /= n;

  std::vector<std::vector<double>> corr(d, std::vector<double>(d, 0.0));
  for (int a = 0; a < d; ++a) {
    corr[a][a] = 1.0;
    for (int b = a + 1; b < d; ++b) {
      const double p11 = co[a][b] / n;
      const double cov = p11 - mean[a] * mean[b];
      const double denom = mean[a] * (1.0 - mean[a]) * mean[b] * (1.0 - mean[b]);
      const double r = denom > 0.0 ? cov / std::sqrt(denom) : 0.0;
      corr[a][b] = r;
      corr[b][a] = r;
    }
  }
  return corr;
}

std::string RenderHeatmap(const std::vector<std::vector<double>>& matrix,
                          const std::vector<std::string>& names) {
  const size_t d = matrix.size();
  // Shade buckets from strong negative to strong positive correlation.
  auto shade = [](double r) -> const char* {
    if (r >= 0.75) return "@@";
    if (r >= 0.45) return "##";
    if (r >= 0.20) return "++";
    if (r >= 0.05) return "..";
    if (r > -0.05) return "  ";
    if (r > -0.20) return ",,";
    if (r > -0.45) return "--";
    return "==";
  };

  size_t label_width = 0;
  for (const auto& name : names) label_width = std::max(label_width, name.size());
  label_width = std::max<size_t>(label_width, 4);

  std::string out;
  // Header row with column indices.
  out.append(label_width + 1, ' ');
  for (size_t c = 0; c < d; ++c) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%2u ", static_cast<unsigned>(c));
    out += buf;
  }
  out += "\n";
  for (size_t r = 0; r < d; ++r) {
    std::string label = r < names.size() ? names[r] : std::to_string(r);
    label.resize(label_width, ' ');
    out += label;
    out += " ";
    for (size_t c = 0; c < d; ++c) {
      out += shade(matrix[r][c]);
      out += " ";
    }
    out += "\n";
  }
  out += "legend: @@ >=.75  ## >=.45  ++ >=.20  .. >=.05  (blank) ~0  ,, <-.05  -- <-.20  == <-.45\n";
  return out;
}

}  // namespace ldpm
