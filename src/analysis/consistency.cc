#include "analysis/consistency.h"

#include <unordered_map>

#include "core/bits.h"

namespace ldpm {

StatusOr<FourierCoefficients> FitSharedCoefficients(
    const std::vector<MarginalTable>& marginals, int d,
    const std::vector<double>& weights) {
  if (marginals.empty()) {
    return Status::InvalidArgument("FitSharedCoefficients: no marginals");
  }
  if (!weights.empty() && weights.size() != marginals.size()) {
    return Status::InvalidArgument(
        "FitSharedCoefficients: weights/marginals length mismatch");
  }
  for (size_t i = 0; i < marginals.size(); ++i) {
    if (marginals[i].dimensions() != d) {
      return Status::InvalidArgument(
          "FitSharedCoefficients: marginal dimension mismatch");
    }
    if (!weights.empty() && !(weights[i] >= 0.0)) {
      return Status::InvalidArgument(
          "FitSharedCoefficients: weights must be non-negative");
    }
  }

  // Accumulate weighted coefficient votes. For alpha ⪯ beta, the marginal's
  // implied estimate is f_alpha = sum_gamma C_beta[gamma] (-1)^{<alpha,gamma>},
  // computed on compact indices (the inner product restricted to beta's bits
  // equals the full-width one because alpha ⪯ beta).
  std::unordered_map<uint64_t, double> sums;
  std::unordered_map<uint64_t, double> totals;
  for (size_t i = 0; i < marginals.size(); ++i) {
    const MarginalTable& m = marginals[i];
    const double w = weights.empty() ? 1.0 : weights[i];
    if (w == 0.0) continue;
    const uint64_t cells = m.size();
    // FWHT of the compact cell vector gives all 2^k implied coefficients.
    std::vector<double> spectrum(m.values());
    FastWalshHadamard(spectrum);
    for (uint64_t r = 1; r < cells; ++r) {
      const uint64_t alpha = DepositBits(r, m.beta());
      sums[alpha] += w * spectrum[r];
      totals[alpha] += w;
    }
  }

  FourierCoefficients fitted(d);
  for (const auto& [alpha, total] : totals) {
    fitted.Set(alpha, sums[alpha] / total);
  }
  return fitted;
}

StatusOr<std::vector<MarginalTable>> MakeConsistent(
    const std::vector<MarginalTable>& marginals, int d,
    const std::vector<double>& weights) {
  auto fitted = FitSharedCoefficients(marginals, d, weights);
  if (!fitted.ok()) return fitted.status();
  std::vector<MarginalTable> out;
  out.reserve(marginals.size());
  for (const MarginalTable& m : marginals) {
    auto rebuilt = fitted->ReconstructMarginal(m.beta());
    if (!rebuilt.ok()) return rebuilt.status();
    out.push_back(*std::move(rebuilt));
  }
  return out;
}

}  // namespace ldpm
