#include "analysis/chow_liu.h"

#include <limits>
#include <string>

#include "analysis/mutual_information.h"
#include "core/bits.h"

namespace ldpm {

StatusOr<ChowLiuTree> BuildChowLiuTree(
    const std::vector<std::vector<double>>& mi) {
  const int d = static_cast<int>(mi.size());
  if (d < 2) {
    return Status::InvalidArgument("BuildChowLiuTree: need at least 2 nodes");
  }
  for (int i = 0; i < d; ++i) {
    if (static_cast<int>(mi[i].size()) != d) {
      return Status::InvalidArgument("BuildChowLiuTree: matrix not square");
    }
  }

  // Prim's algorithm, maximizing weight.
  ChowLiuTree tree;
  tree.d = d;
  std::vector<bool> in_tree(d, false);
  std::vector<double> best_weight(d, -std::numeric_limits<double>::infinity());
  std::vector<int> best_parent(d, -1);
  in_tree[0] = true;
  for (int v = 1; v < d; ++v) {
    best_weight[v] = mi[0][v];
    best_parent[v] = 0;
  }
  for (int step = 1; step < d; ++step) {
    int pick = -1;
    double pick_weight = -std::numeric_limits<double>::infinity();
    for (int v = 0; v < d; ++v) {
      if (!in_tree[v] && best_weight[v] > pick_weight) {
        pick = v;
        pick_weight = best_weight[v];
      }
    }
    LDPM_CHECK(pick >= 0);
    in_tree[pick] = true;
    tree.edges.push_back({best_parent[pick], pick, pick_weight});
    tree.total_mutual_information += pick_weight;
    for (int v = 0; v < d; ++v) {
      if (!in_tree[v] && mi[pick][v] > best_weight[v]) {
        best_weight[v] = mi[pick][v];
        best_parent[v] = pick;
      }
    }
  }
  return tree;
}

StatusOr<ChowLiuTree> BuildChowLiuTreeFromMarginals(
    int d, const PairwiseMarginalProvider& provider) {
  if (d < 2 || d > kMaxDimensions) {
    return Status::InvalidArgument("BuildChowLiuTreeFromMarginals: bad d");
  }
  std::vector<std::vector<double>> mi(d, std::vector<double>(d, 0.0));
  for (int a = 0; a < d; ++a) {
    for (int b = a + 1; b < d; ++b) {
      const uint64_t beta = (uint64_t{1} << a) | (uint64_t{1} << b);
      auto joint = provider(beta);
      if (!joint.ok()) return joint.status();
      auto value = MutualInformation(*joint);
      if (!value.ok()) return value.status();
      mi[a][b] = *value;
      mi[b][a] = *value;
    }
  }
  return BuildChowLiuTree(mi);
}

StatusOr<double> ScoreTreeAgainst(
    const ChowLiuTree& tree,
    const std::vector<std::vector<double>>& reference_mi) {
  const int d = static_cast<int>(reference_mi.size());
  if (tree.d != d) {
    return Status::InvalidArgument(
        "ScoreTreeAgainst: dimension mismatch between tree and matrix");
  }
  double total = 0.0;
  for (const ChowLiuEdge& e : tree.edges) {
    if (e.a < 0 || e.a >= d || e.b < 0 || e.b >= d) {
      return Status::OutOfRange("ScoreTreeAgainst: edge endpoint out of range");
    }
    total += reference_mi[e.a][e.b];
  }
  return total;
}

}  // namespace ldpm
