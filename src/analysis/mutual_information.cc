#include "analysis/mutual_information.h"

#include <cmath>

namespace ldpm {

double Entropy(const MarginalTable& table) {
  MarginalTable cleaned = table;
  cleaned.ProjectToSimplex();
  double h = 0.0;
  for (uint64_t i = 0; i < cleaned.size(); ++i) {
    const double p = cleaned.at_compact(i);
    if (p > 0.0) h -= p * std::log(p);
  }
  return h;
}

StatusOr<double> MutualInformation(const MarginalTable& joint) {
  if (joint.order() != 2) {
    return Status::InvalidArgument(
        "MutualInformation: requires a 2-way marginal");
  }
  MarginalTable cleaned = joint;
  cleaned.ProjectToSimplex();

  const double p00 = cleaned.at_compact(0);
  const double p10 = cleaned.at_compact(1);
  const double p01 = cleaned.at_compact(2);
  const double p11 = cleaned.at_compact(3);
  const double pa[2] = {p00 + p01, p10 + p11};  // P[A = a]
  const double pb[2] = {p00 + p10, p01 + p11};  // P[B = b]

  double mi = 0.0;
  const double joint_p[2][2] = {{p00, p01}, {p10, p11}};
  for (int a = 0; a < 2; ++a) {
    for (int b = 0; b < 2; ++b) {
      const double pab = joint_p[a][b];
      if (pab <= 0.0) continue;
      const double denom = pa[a] * pb[b];
      if (denom <= 0.0) continue;
      mi += pab * std::log(pab / denom);
    }
  }
  // Floating point cancellation can produce a tiny negative; MI >= 0.
  return mi < 0.0 ? 0.0 : mi;
}

StatusOr<double> MutualInformationBits(const MarginalTable& joint) {
  auto nats = MutualInformation(joint);
  if (!nats.ok()) return nats.status();
  return *nats / std::log(2.0);
}

}  // namespace ldpm
