// Pairwise correlation of binary attributes (the phi / Pearson coefficient
// behind Figure 3's heatmap).

#ifndef LDPM_ANALYSIS_CORRELATION_H_
#define LDPM_ANALYSIS_CORRELATION_H_

#include <string>
#include <vector>

#include "core/contingency_table.h"
#include "core/status.h"

namespace ldpm {

/// The phi coefficient (= Pearson correlation for binary variables) of a
/// 2-way marginal:
///   phi = (p11 p00 - p10 p01) / sqrt(pa (1-pa) pb (1-pb)).
/// Returns 0 when either attribute is constant (undefined correlation).
StatusOr<double> PhiCoefficient(const MarginalTable& joint);

/// Exact d x d correlation matrix of packed binary rows. Diagonal is 1.
StatusOr<std::vector<std::vector<double>>> CorrelationMatrix(
    const std::vector<uint64_t>& rows, int d);

/// Renders a correlation matrix as an ASCII heatmap (rows/cols labeled with
/// `names`, cells bucketed into character shades) — the Figure 3 rendering.
std::string RenderHeatmap(const std::vector<std::vector<double>>& matrix,
                          const std::vector<std::string>& names);

}  // namespace ldpm

#endif  // LDPM_ANALYSIS_CORRELATION_H_
