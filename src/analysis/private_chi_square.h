// Noise-aware chi-squared testing for privately reconstructed marginals.
//
// The paper (Section 6.1, footnote 3, citing Gaboardi et al.) notes that
// comparing a chi-squared statistic computed from an LDP-reconstructed
// marginal against the *noise-unaware* critical value does not give the
// intended significance level: the mechanism noise inflates the statistic
// of truly independent pairs far beyond 3.841, roughly by
// N * Var(phi_hat) — which is nearly independent of N because the noise
// variance itself shrinks as 1/N. The paper leaves robust LDP correlation
// testing as future work; this module provides it.
//
// Approach: Monte Carlo calibration. Replicate the *null* world — two
// independent attributes with the observed 1-way margins — through the
// actual protocol (same d, k, eps, estimator and population size), compute
// the private chi-squared statistic each time, and use the empirical
// (1 - significance) quantile as the corrected critical value.

#ifndef LDPM_ANALYSIS_PRIVATE_CHI_SQUARE_H_
#define LDPM_ANALYSIS_PRIVATE_CHI_SQUARE_H_

#include "analysis/chi_square.h"
#include "protocols/factory.h"

namespace ldpm {

/// Calibration parameters for the Monte Carlo null distribution.
struct PrivateChiSquareOptions {
  /// Null-world replications; the quantile is read off their statistics.
  int replicates = 60;
  /// Significance level of the test.
  double significance = 0.05;
  /// Users simulated per replicate. The noise component of the statistic is
  /// nearly N-independent, so this need not match the real collection size;
  /// it only must be large enough that the sampling component is realistic.
  size_t num_users = size_t{1} << 15;
  uint64_t seed = 7777;
};

/// Monte-Carlo-calibrated critical value for the chi-squared statistic of
/// the 2-way marginal `beta` reconstructed by protocol `kind` under
/// `config`. `pa` and `pb` are the (estimated) marginal means of the two
/// attributes, defining the independent null distribution.
StatusOr<double> PrivateChiSquareCriticalValue(
    ProtocolKind kind, const ProtocolConfig& config, uint64_t beta, double pa,
    double pb, const PrivateChiSquareOptions& options = {});

/// Convenience wrapper: runs the plain chi-squared test on a privately
/// reconstructed marginal but replaces the critical value with the
/// noise-aware Monte Carlo one (derived from the marginal's own margins).
/// `n` is the real collection's population size.
StatusOr<ChiSquareResult> NoiseAwareChiSquareTest(
    ProtocolKind kind, const ProtocolConfig& config, uint64_t beta,
    const MarginalTable& private_marginal, double n,
    const PrivateChiSquareOptions& options = {});

}  // namespace ldpm

#endif  // LDPM_ANALYSIS_PRIVATE_CHI_SQUARE_H_
