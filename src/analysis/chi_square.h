// Chi-squared independence testing over 2-way marginals (Section 6.1), plus
// the chi-squared distribution machinery (CDF, critical values) it needs.

#ifndef LDPM_ANALYSIS_CHI_SQUARE_H_
#define LDPM_ANALYSIS_CHI_SQUARE_H_

#include "core/contingency_table.h"
#include "core/status.h"

namespace ldpm {

/// CDF of the chi-squared distribution with `dof` degrees of freedom at x,
/// computed via the regularized lower incomplete gamma function P(dof/2, x/2).
StatusOr<double> ChiSquaredCdf(double x, int dof);

/// The critical value c with P[X > c] = significance for a chi-squared
/// variable with `dof` degrees of freedom (e.g. dof=1, significance=0.05
/// gives 3.841).
StatusOr<double> ChiSquaredCriticalValue(int dof, double significance);

/// Outcome of a chi-squared test of independence.
struct ChiSquareResult {
  double statistic = 0.0;        ///< the chi-squared test statistic
  int degrees_of_freedom = 0;    ///< (r-1)(c-1); 1 for binary pairs
  double critical_value = 0.0;   ///< threshold at the chosen significance
  double p_value = 1.0;          ///< P[X >= statistic] under independence
  bool reject_independence = false;  ///< statistic > critical_value
};

/// Tests independence of the two attributes of a 2-way marginal
/// (|beta| == 2 required). `n` is the population size behind the marginal
/// (the statistic scales linearly with it). Noisy marginals are projected
/// onto the simplex before testing, matching how an analyst would consume a
/// privately reconstructed table.
StatusOr<ChiSquareResult> ChiSquareIndependenceTest(const MarginalTable& joint,
                                                    double n,
                                                    double significance = 0.05);

}  // namespace ldpm

#endif  // LDPM_ANALYSIS_CHI_SQUARE_H_
