#include "analysis/private_chi_square.h"

#include <algorithm>
#include <cmath>

#include "core/bits.h"

namespace ldpm {
namespace {

// Simulates the independent null world through the protocol `replicates`
// times and returns the sorted private chi-squared statistics.
StatusOr<std::vector<double>> NullStatistics(
    ProtocolKind kind, const ProtocolConfig& config, uint64_t beta, double pa,
    double pb, const PrivateChiSquareOptions& options) {
  if (Popcount(beta) != 2) {
    return Status::InvalidArgument(
        "PrivateChiSquare: beta must select exactly two attributes");
  }
  if (!(pa >= 0.0 && pa <= 1.0 && pb >= 0.0 && pb <= 1.0)) {
    return Status::InvalidArgument(
        "PrivateChiSquare: margins must lie in [0, 1]");
  }
  if (options.replicates < 10) {
    return Status::InvalidArgument(
        "PrivateChiSquare: need at least 10 replicates");
  }
  const uint64_t bit_a = beta & (~beta + 1);
  const uint64_t bit_b = beta ^ bit_a;

  Rng rng(options.seed);
  std::vector<double> stats;
  stats.reserve(options.replicates);
  std::vector<uint64_t> rows(options.num_users);
  const uint64_t domain_mask =
      config.d >= 64 ? ~uint64_t{0} : (uint64_t{1} << config.d) - 1;
  for (int r = 0; r < options.replicates; ++r) {
    auto protocol = CreateProtocol(kind, config);
    if (!protocol.ok()) return protocol.status();
    for (uint64_t& row : rows) {
      // Independent null: the two tested attributes independent with the
      // observed margins; the remaining attributes are irrelevant filler.
      row = rng() & domain_mask & ~beta;
      if (rng.Bernoulli(pa)) row |= bit_a;
      if (rng.Bernoulli(pb)) row |= bit_b;
    }
    LDPM_RETURN_IF_ERROR((*protocol)->AbsorbPopulation(rows, rng));
    auto estimate = (*protocol)->EstimateMarginal(beta);
    if (!estimate.ok()) return estimate.status();
    auto test = ChiSquareIndependenceTest(
        *estimate, static_cast<double>(options.num_users),
        options.significance);
    if (!test.ok()) return test.status();
    stats.push_back(test->statistic);
  }
  std::sort(stats.begin(), stats.end());
  return stats;
}

double Quantile(const std::vector<double>& sorted, double q) {
  // Linear interpolation between order statistics.
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(std::floor(pos));
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace

StatusOr<double> PrivateChiSquareCriticalValue(
    ProtocolKind kind, const ProtocolConfig& config, uint64_t beta, double pa,
    double pb, const PrivateChiSquareOptions& options) {
  auto stats = NullStatistics(kind, config, beta, pa, pb, options);
  if (!stats.ok()) return stats.status();
  return Quantile(*stats, 1.0 - options.significance);
}

StatusOr<ChiSquareResult> NoiseAwareChiSquareTest(
    ProtocolKind kind, const ProtocolConfig& config, uint64_t beta,
    const MarginalTable& private_marginal, double n,
    const PrivateChiSquareOptions& options) {
  // The plain statistic (with the real collection size n).
  auto plain = ChiSquareIndependenceTest(private_marginal, n,
                                         options.significance);
  if (!plain.ok()) return plain.status();

  // Margins for the null world, from the private estimate itself.
  MarginalTable cleaned = private_marginal;
  cleaned.ProjectToSimplex();
  const double pa = cleaned.at_compact(1) + cleaned.at_compact(3);
  const double pb = cleaned.at_compact(2) + cleaned.at_compact(3);

  auto stats = NullStatistics(kind, config, beta, pa, pb, options);
  if (!stats.ok()) return stats.status();

  ChiSquareResult result = *plain;
  result.critical_value = Quantile(*stats, 1.0 - options.significance);
  result.reject_independence = result.statistic > result.critical_value;
  // Monte Carlo p-value: the fraction of null statistics at or above the
  // observed one (with the standard +1 smoothing).
  const double above = static_cast<double>(
      stats->end() - std::lower_bound(stats->begin(), stats->end(),
                                      result.statistic));
  result.p_value =
      (above + 1.0) / (static_cast<double>(stats->size()) + 1.0);
  return result;
}

}  // namespace ldpm
