#include "analysis/chi_square.h"

#include <cmath>

#include "core/marginal.h"

namespace ldpm {
namespace {

// Regularized lower incomplete gamma P(a, x), via the series expansion for
// x < a + 1 and the continued fraction for the complement otherwise
// (Numerical Recipes 6.2). Accurate to ~1e-12 over the range we need.
double LowerRegularizedGamma(double a, double x) {
  if (x <= 0.0) return 0.0;
  const double log_gamma_a = std::lgamma(a);
  if (x < a + 1.0) {
    // Series: P(a,x) = e^{-x} x^a / Gamma(a) * sum_{n>=0} x^n / (a+1)...(a+n)
    double term = 1.0 / a;
    double sum = term;
    double ap = a;
    for (int n = 0; n < 500; ++n) {
      ap += 1.0;
      term *= x / ap;
      sum += term;
      if (std::fabs(term) < std::fabs(sum) * 1e-15) break;
    }
    return sum * std::exp(-x + a * std::log(x) - log_gamma_a);
  }
  // Continued fraction for Q(a,x) = 1 - P(a,x) (modified Lentz).
  const double kTiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 500; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::fabs(delta - 1.0) < 1e-15) break;
  }
  const double q = std::exp(-x + a * std::log(x) - log_gamma_a) * h;
  return 1.0 - q;
}

}  // namespace

StatusOr<double> ChiSquaredCdf(double x, int dof) {
  if (dof < 1) {
    return Status::InvalidArgument("ChiSquaredCdf: dof must be >= 1");
  }
  if (!std::isfinite(x)) {
    return Status::InvalidArgument("ChiSquaredCdf: x must be finite");
  }
  if (x <= 0.0) return 0.0;
  return LowerRegularizedGamma(static_cast<double>(dof) / 2.0, x / 2.0);
}

StatusOr<double> ChiSquaredCriticalValue(int dof, double significance) {
  if (dof < 1) {
    return Status::InvalidArgument("ChiSquaredCriticalValue: dof must be >= 1");
  }
  if (!(significance > 0.0) || !(significance < 1.0)) {
    return Status::InvalidArgument(
        "ChiSquaredCriticalValue: significance must lie in (0, 1)");
  }
  const double target = 1.0 - significance;
  // Bisection on the CDF; the bracket [0, hi] grows until it contains the
  // quantile. The CDF is strictly increasing so this always converges.
  double lo = 0.0;
  double hi = 10.0 * (dof + 10);
  while (*ChiSquaredCdf(hi, dof) < target) hi *= 2.0;
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (*ChiSquaredCdf(mid, dof) < target) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo < 1e-12 * (1.0 + hi)) break;
  }
  return 0.5 * (lo + hi);
}

StatusOr<ChiSquareResult> ChiSquareIndependenceTest(const MarginalTable& joint,
                                                    double n,
                                                    double significance) {
  if (joint.order() != 2) {
    return Status::InvalidArgument(
        "ChiSquareIndependenceTest: requires a 2-way marginal");
  }
  if (!(n > 0.0)) {
    return Status::InvalidArgument(
        "ChiSquareIndependenceTest: population size must be > 0");
  }

  MarginalTable cleaned = joint;
  cleaned.ProjectToSimplex();

  // Row/column marginal probabilities of the 2x2 table. Compact index bit 0
  // is the lower-order attribute of beta.
  const double p00 = cleaned.at_compact(0);
  const double p10 = cleaned.at_compact(1);  // attr A = 1, attr B = 0
  const double p01 = cleaned.at_compact(2);
  const double p11 = cleaned.at_compact(3);
  const double pa = p10 + p11;  // P[A = 1]
  const double pb = p01 + p11;  // P[B = 1]

  ChiSquareResult result;
  result.degrees_of_freedom = 1;
  auto critical = ChiSquaredCriticalValue(1, significance);
  if (!critical.ok()) return critical.status();
  result.critical_value = *critical;

  const double observed[4] = {p00, p10, p01, p11};
  const double expected[4] = {(1.0 - pa) * (1.0 - pb), pa * (1.0 - pb),
                              (1.0 - pa) * pb, pa * pb};
  double statistic = 0.0;
  bool degenerate = false;
  for (int c = 0; c < 4; ++c) {
    if (expected[c] <= 0.0) {
      // A structurally empty row/column: the test is undefined; treat the
      // contribution as zero (the pair is degenerate, not dependent).
      degenerate = true;
      continue;
    }
    const double diff = observed[c] - expected[c];
    statistic += n * diff * diff / expected[c];
  }
  (void)degenerate;
  result.statistic = statistic;
  auto cdf = ChiSquaredCdf(statistic, 1);
  if (!cdf.ok()) return cdf.status();
  result.p_value = 1.0 - *cdf;
  result.reject_independence = statistic > result.critical_value;
  return result;
}

}  // namespace ldpm
