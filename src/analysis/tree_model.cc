#include "analysis/tree_model.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "core/bits.h"
#include "core/marginal.h"

namespace ldpm {
namespace {

double Clamp01(double p, double smoothing) {
  return std::min(1.0 - smoothing, std::max(smoothing, p));
}

}  // namespace

StatusOr<TreeModel> TreeModel::Fit(const ChowLiuTree& tree,
                                   const PairwiseMarginalProvider& provider,
                                   double smoothing) {
  const int d = tree.d;
  if (d < 2 || d > kMaxDimensions) {
    return Status::InvalidArgument("TreeModel: bad tree dimension");
  }
  if (!(smoothing > 0.0) || !(smoothing < 0.5)) {
    return Status::InvalidArgument("TreeModel: smoothing must be in (0, 0.5)");
  }
  if (static_cast<int>(tree.edges.size()) != d - 1) {
    return Status::InvalidArgument(
        "TreeModel: tree must have exactly d - 1 edges");
  }

  // Build adjacency and orient the tree away from node 0.
  std::vector<std::vector<int>> adjacent(d);
  for (const ChowLiuEdge& e : tree.edges) {
    if (e.a < 0 || e.a >= d || e.b < 0 || e.b >= d || e.a == e.b) {
      return Status::InvalidArgument("TreeModel: edge endpoint out of range");
    }
    adjacent[e.a].push_back(e.b);
    adjacent[e.b].push_back(e.a);
  }
  std::vector<Node> nodes(d);
  std::vector<int> order;
  order.reserve(d);
  std::vector<bool> visited(d, false);
  std::vector<int> stack = {0};
  visited[0] = true;
  while (!stack.empty()) {
    const int v = stack.back();
    stack.pop_back();
    order.push_back(v);
    for (int u : adjacent[v]) {
      if (visited[u]) continue;
      visited[u] = true;
      nodes[u].parent = v;
      stack.push_back(u);
    }
  }
  if (static_cast<int>(order.size()) != d) {
    return Status::InvalidArgument("TreeModel: edges do not form a tree");
  }

  // Fit CPTs from 2-way marginals. For each child c with parent p, pull the
  // joint over {c, p} and condition.
  for (int v : order) {
    if (nodes[v].parent < 0) {
      // Root: its 1-way marginal, obtained by marginalizing any pairwise
      // table that contains it.
      const int other = (v + 1) % d;
      const uint64_t beta = (uint64_t{1} << v) | (uint64_t{1} << other);
      auto joint = provider(beta);
      if (!joint.ok()) return joint.status();
      MarginalTable cleaned = *joint;
      cleaned.ProjectToSimplex();
      auto one_way = MarginalizeTable(cleaned, uint64_t{1} << v);
      if (!one_way.ok()) return one_way.status();
      nodes[v].p_root = Clamp01(one_way->at_compact(1), smoothing);
      continue;
    }
    const int p = nodes[v].parent;
    const uint64_t beta = (uint64_t{1} << v) | (uint64_t{1} << p);
    auto joint = provider(beta);
    if (!joint.ok()) return joint.status();
    MarginalTable cleaned = *joint;
    cleaned.ProjectToSimplex();
    // Compact layout: bit 0 of the compact index is the lower attribute id.
    const bool child_low = v < p;
    auto cell = [&](int child_bit, int parent_bit) {
      const uint64_t low = child_low ? child_bit : parent_bit;
      const uint64_t high = child_low ? parent_bit : child_bit;
      return cleaned.at_compact(low | (high << 1));
    };
    for (int parent_bit = 0; parent_bit < 2; ++parent_bit) {
      const double denom = cell(0, parent_bit) + cell(1, parent_bit);
      const double conditional =
          denom > 0.0 ? cell(1, parent_bit) / denom : 0.5;
      nodes[v].p_given_parent[parent_bit] = Clamp01(conditional, smoothing);
    }
  }
  return TreeModel(d, tree, std::move(nodes), std::move(order));
}

StatusOr<TreeModel> TreeModel::LearnAndFit(
    int d, const PairwiseMarginalProvider& provider, double smoothing) {
  auto tree = BuildChowLiuTreeFromMarginals(d, provider);
  if (!tree.ok()) return tree.status();
  return Fit(*tree, provider, smoothing);
}

double TreeModel::JointProbability(uint64_t row) const {
  double p = 1.0;
  for (int v : topological_order_) {
    const int bit = static_cast<int>((row >> v) & 1);
    const Node& node = nodes_[v];
    double p_one;
    if (node.parent < 0) {
      p_one = node.p_root;
    } else {
      const int parent_bit = static_cast<int>((row >> node.parent) & 1);
      p_one = node.p_given_parent[parent_bit];
    }
    p *= bit ? p_one : 1.0 - p_one;
  }
  return p;
}

StatusOr<double> TreeModel::MeanLogLikelihood(
    const std::vector<uint64_t>& rows) const {
  if (rows.empty()) {
    return Status::InvalidArgument("TreeModel: empty dataset");
  }
  double total = 0.0;
  for (uint64_t row : rows) {
    const double p = JointProbability(row);
    if (!(p > 0.0)) {
      return Status::Internal("TreeModel: zero probability row");
    }
    total += std::log(p);
  }
  return total / static_cast<double>(rows.size());
}

std::vector<uint64_t> TreeModel::Sample(size_t n, Rng& rng) const {
  std::vector<uint64_t> rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    uint64_t row = 0;
    for (int v : topological_order_) {
      const Node& node = nodes_[v];
      double p_one;
      if (node.parent < 0) {
        p_one = node.p_root;
      } else {
        const int parent_bit = static_cast<int>((row >> node.parent) & 1);
        p_one = node.p_given_parent[parent_bit];
      }
      if (rng.Bernoulli(p_one)) row |= uint64_t{1} << v;
    }
    rows.push_back(row);
  }
  return rows;
}

StatusOr<double> TreeModel::AttributeMean(int attribute) const {
  if (attribute < 0 || attribute >= d_) {
    return Status::OutOfRange("TreeModel: attribute out of range");
  }
  // Propagate marginal means down the topological order.
  std::vector<double> mean(d_, 0.0);
  for (int v : topological_order_) {
    const Node& node = nodes_[v];
    if (node.parent < 0) {
      mean[v] = node.p_root;
    } else {
      const double pm = mean[node.parent];
      mean[v] = pm * node.p_given_parent[1] + (1.0 - pm) * node.p_given_parent[0];
    }
  }
  return mean[attribute];
}

std::vector<TreeModel::CptEntry> TreeModel::Cpts() const {
  std::vector<CptEntry> cpts;
  cpts.reserve(topological_order_.size());
  for (int v : topological_order_) {
    const Node& node = nodes_[v];
    CptEntry entry;
    entry.attribute = v;
    entry.parent = node.parent;
    entry.p_root = node.p_root;
    entry.p_given_parent[0] = node.p_given_parent[0];
    entry.p_given_parent[1] = node.p_given_parent[1];
    cpts.push_back(entry);
  }
  return cpts;
}

}  // namespace ldpm
