#include "mechanisms/randomized_response.h"

#include <cmath>
#include <string>

namespace ldpm {

StatusOr<RandomizedResponse> RandomizedResponse::FromEpsilon(double epsilon) {
  if (!(epsilon > 0.0) || !std::isfinite(epsilon)) {
    return Status::InvalidArgument(
        "RandomizedResponse: epsilon must be finite and > 0, got " +
        std::to_string(epsilon));
  }
  const double e = std::exp(epsilon);
  return RandomizedResponse(e / (1.0 + e));
}

StatusOr<RandomizedResponse> RandomizedResponse::FromKeepProbability(double p) {
  if (!(p > 0.5) || !(p < 1.0)) {
    return Status::InvalidArgument(
        "RandomizedResponse: keep probability must lie in (0.5, 1), got " +
        std::to_string(p));
  }
  return RandomizedResponse(p);
}

double RandomizedResponse::epsilon() const {
  return std::log(p_ / (1.0 - p_));
}

}  // namespace ldpm
