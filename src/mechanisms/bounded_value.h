// One-bit eps-LDP release of a bounded real value.
//
// Generalizes randomized response from {-1,+1} inputs to any v in [-B, B]:
// the user reports a sign s in {-1,+1} with
//
//     P[s = +1] = 1/2 + (2p - 1) * v / (2B),     p = e^eps / (1 + e^eps).
//
// Over all v in [-B, B] the report probability stays within [1-p, p], so
// the worst-case likelihood ratio between any two inputs is p/(1-p) =
// e^eps — exactly eps-LDP. The estimator B * s / (2p - 1) is unbiased for
// v. For v in {-B, +B} the mechanism degenerates to plain randomized
// response, which is how the Hadamard protocols are recovered as a special
// case.
//
// This is the primitive behind the Efron-Stein protocol (InpES): the
// sampled orthonormal-basis coefficient of a categorical attribute tuple is
// a bounded real value rather than a signed bit.

#ifndef LDPM_MECHANISMS_BOUNDED_VALUE_H_
#define LDPM_MECHANISMS_BOUNDED_VALUE_H_

#include "core/random.h"
#include "core/status.h"

namespace ldpm {

class BoundedValueMechanism {
 public:
  /// Builds the eps-LDP mechanism. Fails for non-positive or non-finite eps.
  static StatusOr<BoundedValueMechanism> Create(double epsilon);

  /// Probability weight p = e^eps/(1+e^eps) shaping the channel.
  double keep_probability() const { return p_; }

  /// Releases one sign for a value v with |v| <= bound (checked in debug
  /// builds; callers clamp). bound must be > 0.
  int Perturb(double value, double bound, Rng& rng) const {
    LDPM_DCHECK(bound > 0.0);
    LDPM_DCHECK(value >= -bound - 1e-9 && value <= bound + 1e-9);
    const double p_plus = 0.5 + (2.0 * p_ - 1.0) * value / (2.0 * bound);
    return rng.Bernoulli(p_plus) ? +1 : -1;
  }

  /// Unbiases the mean of reported signs back to a value estimate:
  /// E[s] = (2p-1) v / B, so v_hat = B * mean / (2p-1).
  double UnbiasSignMean(double mean_sign, double bound) const {
    return bound * mean_sign / (2.0 * p_ - 1.0);
  }

  /// Per-report variance bound of the unbiased estimate: at most
  /// (B / (2p-1))^2.
  double VarianceBound(double bound) const {
    const double scale = bound / (2.0 * p_ - 1.0);
    return scale * scale;
  }

 private:
  explicit BoundedValueMechanism(double p) : p_(p) {}
  double p_;
};

}  // namespace ldpm

#endif  // LDPM_MECHANISMS_BOUNDED_VALUE_H_
