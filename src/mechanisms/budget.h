// Privacy-budget accounting (Section 3.1: Budget Splitting, and the standard
// sequential-composition rule from the DP literature).
//
// A PrivacyBudget tracks an epsilon allowance and the portions spent on it.
// Budget splitting (the BS primitive of the paper, used by InpEM) divides
// the allowance evenly across m sub-mechanisms; sequential composition adds
// the epsilons of mechanisms run on the same input.

#ifndef LDPM_MECHANISMS_BUDGET_H_
#define LDPM_MECHANISMS_BUDGET_H_

#include <cmath>
#include <string>

#include "core/status.h"

namespace ldpm {

/// Tracks an epsilon allowance. Spend() debits; the object check-fails
/// nothing but returns errors when overdrawn, so protocol code can surface
/// misconfiguration as Status.
class PrivacyBudget {
 public:
  /// A budget of `epsilon` total. Fails for non-positive or non-finite eps.
  static StatusOr<PrivacyBudget> Create(double epsilon) {
    if (!(epsilon > 0.0) || !std::isfinite(epsilon)) {
      return Status::InvalidArgument(
          "PrivacyBudget: epsilon must be finite and > 0, got " +
          std::to_string(epsilon));
    }
    return PrivacyBudget(epsilon);
  }

  /// Total allowance.
  double total() const { return total_; }

  /// Amount already spent.
  double spent() const { return spent_; }

  /// Amount still available.
  double remaining() const { return total_ - spent_; }

  /// Debits `epsilon` from the budget. Fails (and debits nothing) if the
  /// remaining allowance is insufficient (tolerance 1e-9 for float drift).
  Status Spend(double epsilon) {
    if (!(epsilon > 0.0) || !std::isfinite(epsilon)) {
      return Status::InvalidArgument("PrivacyBudget::Spend: bad epsilon");
    }
    if (epsilon > remaining() + 1e-9) {
      return Status::FailedPrecondition(
          "PrivacyBudget::Spend: overdraw (requested " +
          std::to_string(epsilon) + ", remaining " +
          std::to_string(remaining()) + ")");
    }
    spent_ += epsilon;
    return Status::OK();
  }

  /// The per-piece epsilon when splitting the *remaining* budget evenly
  /// across m sub-mechanisms (the BS primitive).
  StatusOr<double> SplitEvenly(int m) const {
    if (m <= 0) {
      return Status::InvalidArgument("PrivacyBudget::SplitEvenly: m must be > 0");
    }
    return remaining() / static_cast<double>(m);
  }

 private:
  explicit PrivacyBudget(double epsilon) : total_(epsilon) {}
  double total_;
  double spent_ = 0.0;
};

}  // namespace ldpm

#endif  // LDPM_MECHANISMS_BUDGET_H_
