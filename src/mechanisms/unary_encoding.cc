#include "mechanisms/unary_encoding.h"

#include <cmath>
#include <string>

namespace ldpm {

StatusOr<UnaryEncoding> UnaryEncoding::Create(double epsilon,
                                              UnaryVariant variant) {
  if (!(epsilon > 0.0) || !std::isfinite(epsilon)) {
    return Status::InvalidArgument(
        "UnaryEncoding: epsilon must be finite and > 0, got " +
        std::to_string(epsilon));
  }
  switch (variant) {
    case UnaryVariant::kVanilla: {
      const double e_half = std::exp(epsilon / 2.0);
      const double p1 = e_half / (1.0 + e_half);
      return UnaryEncoding(p1, 1.0 - p1, variant);
    }
    case UnaryVariant::kOptimized: {
      const double e = std::exp(epsilon);
      return UnaryEncoding(0.5, 1.0 / (e + 1.0), variant);
    }
  }
  return Status::InvalidArgument("UnaryEncoding: unknown variant");
}

std::vector<uint8_t> UnaryEncoding::Perturb(const std::vector<uint8_t>& bits,
                                            Rng& rng) const {
  std::vector<uint8_t> out(bits.size());
  for (size_t i = 0; i < bits.size(); ++i) {
    const double keep_as_one = bits[i] ? p1_ : p0_;
    out[i] = rng.Bernoulli(keep_as_one) ? 1 : 0;
  }
  return out;
}

std::vector<uint64_t> UnaryEncoding::PerturbOneHot(uint64_t m,
                                                   uint64_t hot_index,
                                                   Rng& rng) const {
  LDPM_DCHECK(hot_index < m);
  std::vector<uint64_t> ones;
  // Expected number of reported ones is ~ m * p0, so reserve accordingly.
  ones.reserve(static_cast<size_t>(static_cast<double>(m) * p0_) + 2);
  for (uint64_t i = 0; i < m; ++i) {
    const double keep_as_one = (i == hot_index) ? p1_ : p0_;
    if (rng.Bernoulli(keep_as_one)) ones.push_back(i);
  }
  return ones;
}

double UnaryEncoding::EstimatorVariance(int b) const {
  // Unbiased per-user estimate is (report - p0) / (p1 - p0); its variance is
  // q(1-q)/(p1-p0)^2 where q is the report probability for true bit b.
  const double q = b ? p1_ : p0_;
  const double denom = (p1_ - p0_) * (p1_ - p0_);
  return q * (1.0 - q) / denom;
}

}  // namespace ldpm
