// Single-bit randomized response (Warner 1965), the canonical epsilon-LDP
// primitive (Section 3.1 of the paper).
//
// The user reports their true bit with probability p = e^eps / (1 + e^eps)
// and the flipped bit otherwise, giving exactly eps-LDP
// (e^eps = p / (1 - p)). The aggregator-side unbiasing for {-1,+1}-valued
// reports divides by (2p - 1).

#ifndef LDPM_MECHANISMS_RANDOMIZED_RESPONSE_H_
#define LDPM_MECHANISMS_RANDOMIZED_RESPONSE_H_

#include "core/random.h"
#include "core/status.h"

namespace ldpm {

/// One-bit randomized response with keep probability p > 1/2.
class RandomizedResponse {
 public:
  /// Mechanism achieving exactly eps-LDP: p = e^eps / (1 + e^eps).
  /// Fails for eps <= 0 or non-finite eps.
  static StatusOr<RandomizedResponse> FromEpsilon(double epsilon);

  /// Mechanism with an explicit keep probability in (1/2, 1).
  static StatusOr<RandomizedResponse> FromKeepProbability(double p);

  /// Probability of reporting the true value.
  double keep_probability() const { return p_; }

  /// The epsilon this mechanism satisfies: ln(p / (1 - p)).
  double epsilon() const;

  /// Perturbs a {0,1} bit.
  int PerturbBit(int bit, Rng& rng) const {
    LDPM_DCHECK(bit == 0 || bit == 1);
    return rng.Bernoulli(p_) ? bit : 1 - bit;
  }

  /// Perturbs a {-1,+1} sign (the Hadamard-coefficient case).
  int PerturbSign(int sign, Rng& rng) const {
    LDPM_DCHECK(sign == -1 || sign == 1);
    return rng.Bernoulli(p_) ? sign : -sign;
  }

  /// Unbiases the mean of {-1,+1} reports: E[report] = (2p-1) * truth.
  double UnbiasSignMean(double observed_mean) const {
    return observed_mean / (2.0 * p_ - 1.0);
  }

  /// Unbiases the mean of {0,1} reports: E[report] = p*f + (1-p)(1-f).
  double UnbiasBitMean(double observed_mean) const {
    return (observed_mean - (1.0 - p_)) / (2.0 * p_ - 1.0);
  }

  /// Variance of one unbiased {-1,+1} report around its mean, maximized over
  /// inputs: (1 - (2p-1)^2 * truth^2) / (2p-1)^2 <= 4p(1-p)/(2p-1)^2 + ...;
  /// we return the exact worst case 1/(2p-1)^2 - truth^2 at truth = 0,
  /// i.e. 1/(2p-1)^2.
  double SignEstimatorVarianceBound() const {
    const double denom = 2.0 * p_ - 1.0;
    return 1.0 / (denom * denom);
  }

 private:
  explicit RandomizedResponse(double p) : p_(p) {}
  double p_;
};

}  // namespace ldpm

#endif  // LDPM_MECHANISMS_RANDOMIZED_RESPONSE_H_
