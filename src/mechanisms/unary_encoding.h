// Parallel randomized response over one-hot vectors (PRR; "Basic RAPPOR" /
// "Unary Encoding"), Section 3.1 / Fact 3.2 of the paper.
//
// Each of the m positions of a sparse {0,1} vector passes through an
// independent biased coin: a 1 is reported truthfully with probability p1, a
// 0 becomes a 1 with probability p0. Two parameterizations are provided:
//
//  * kVanilla   — symmetric (eps/2)-RR per bit: p1 = e^{eps/2}/(1+e^{eps/2}),
//                 p0 = 1 - p1. The paper's default description.
//  * kOptimized — Wang et al. (USENIX Sec'17) "Optimized Unary Encoding":
//                 p1 = 1/2, p0 = 1/(e^eps + 1); lower variance, same eps.
//
// Both satisfy exactly eps-LDP on one-hot inputs because adjacent inputs
// differ in two positions and the worst-case likelihood ratio is
// (p1/p0) * ((1-p0)/(1-p1)) = e^eps.

#ifndef LDPM_MECHANISMS_UNARY_ENCODING_H_
#define LDPM_MECHANISMS_UNARY_ENCODING_H_

#include <cstdint>
#include <vector>

#include "core/random.h"
#include "core/status.h"

namespace ldpm {

/// Probability parameterization of unary encoding.
enum class UnaryVariant {
  kVanilla,    ///< symmetric per-bit (eps/2)-RR
  kOptimized,  ///< Wang et al. optimized probabilities
};

/// Parallel randomized response over m-bit one-hot vectors.
class UnaryEncoding {
 public:
  /// Builds the mechanism for a given epsilon and variant.
  static StatusOr<UnaryEncoding> Create(double epsilon,
                                        UnaryVariant variant = UnaryVariant::kOptimized);

  /// Probability a true 1 is reported as 1.
  double p1() const { return p1_; }
  /// Probability a true 0 is reported as 1.
  double p0() const { return p0_; }
  UnaryVariant variant() const { return variant_; }

  /// Perturbs a dense bit vector in place-of-copy form. O(m).
  std::vector<uint8_t> Perturb(const std::vector<uint8_t>& bits, Rng& rng) const;

  /// Perturbs the one-hot vector of length m with the single 1 at
  /// `hot_index`, returning the positions reported as 1. O(m) draws but
  /// avoids materializing the input. Intended for the faithful per-user
  /// simulation path at moderate m.
  std::vector<uint64_t> PerturbOneHot(uint64_t m, uint64_t hot_index,
                                      Rng& rng) const;

  /// Unbiases an aggregated count: given that `count` of `n` users reported
  /// a 1 at some position, returns an unbiased estimate of the number of
  /// users whose true bit was 1: (count - n*p0) / (p1 - p0).
  double UnbiasCount(double count, double n) const {
    return (count - n * p0_) / (p1_ - p0_);
  }

  /// Per-user variance of the unbiased estimate when the true bit is b.
  double EstimatorVariance(int b) const;

 private:
  UnaryEncoding(double p1, double p0, UnaryVariant v)
      : p1_(p1), p0_(p0), variant_(v) {}
  double p1_;
  double p0_;
  UnaryVariant variant_;
};

}  // namespace ldpm

#endif  // LDPM_MECHANISMS_UNARY_ENCODING_H_
