#include "mechanisms/direct_encoding.h"

#include <cmath>
#include <string>

namespace ldpm {

StatusOr<DirectEncoding> DirectEncoding::Create(double epsilon, uint64_t m) {
  if (!(epsilon > 0.0) || !std::isfinite(epsilon)) {
    return Status::InvalidArgument(
        "DirectEncoding: epsilon must be finite and > 0, got " +
        std::to_string(epsilon));
  }
  if (m < 2) {
    return Status::InvalidArgument(
        "DirectEncoding: domain size must be >= 2, got " + std::to_string(m));
  }
  const double e = std::exp(epsilon);
  const double ps = e / (e + static_cast<double>(m) - 1.0);
  return DirectEncoding(ps, m);
}

uint64_t DirectEncoding::Perturb(uint64_t value, Rng& rng) const {
  LDPM_DCHECK(value < m_);
  if (rng.Bernoulli(ps_)) return value;
  // Uniform over the m-1 other values: draw from [0, m-1) and skip `value`.
  const uint64_t other = rng.UniformInt(m_ - 1);
  return other < value ? other : other + 1;
}

}  // namespace ldpm
