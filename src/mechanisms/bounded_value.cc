#include "mechanisms/bounded_value.h"

#include <cmath>
#include <string>

namespace ldpm {

StatusOr<BoundedValueMechanism> BoundedValueMechanism::Create(double epsilon) {
  if (!(epsilon > 0.0) || !std::isfinite(epsilon)) {
    return Status::InvalidArgument(
        "BoundedValueMechanism: epsilon must be finite and > 0, got " +
        std::to_string(epsilon));
  }
  const double e = std::exp(epsilon);
  return BoundedValueMechanism(e / (1.0 + e));
}

}  // namespace ldpm
