// Preferential sampling (PS; also "generalized randomized response" or
// "direct encoding"), Section 3.1 / Fact 3.1 of the paper.
//
// Over a domain of m values, the user reports their true value with
// probability p_s = e^eps / (e^eps + m - 1) and each specific wrong value
// with probability (1 - p_s)/(m - 1), achieving exactly eps-LDP.
//
// Aggregator-side unbiasing (Section 4.1, with D = m - 1): if F_j is the
// observed fraction of reports equal to j, the unbiased frequency estimate
// is f_hat_j = (D * F_j + p_s - 1) / (D * p_s + p_s - 1).

#ifndef LDPM_MECHANISMS_DIRECT_ENCODING_H_
#define LDPM_MECHANISMS_DIRECT_ENCODING_H_

#include <cstdint>

#include "core/random.h"
#include "core/status.h"

namespace ldpm {

/// Preferential sampling over a domain of m >= 2 values.
class DirectEncoding {
 public:
  /// Builds the eps-LDP mechanism over a domain of m values.
  static StatusOr<DirectEncoding> Create(double epsilon, uint64_t m);

  /// Probability of reporting the true value.
  double ps() const { return ps_; }

  /// Domain size m.
  uint64_t domain_size() const { return m_; }

  /// Perturbs a value in [0, m): keeps it with probability p_s, otherwise
  /// reports a uniformly random *different* value.
  uint64_t Perturb(uint64_t value, Rng& rng) const;

  /// Unbiases an observed report frequency F_j into an estimate of the true
  /// input frequency f_j.
  double UnbiasFrequency(double observed_frequency) const {
    const double D = static_cast<double>(m_ - 1);
    return (D * observed_frequency + ps_ - 1.0) / (D * ps_ + ps_ - 1.0);
  }

  /// Same, for raw counts out of n reports.
  double UnbiasCount(double count, double n) const {
    return n * UnbiasFrequency(count / n);
  }

 private:
  DirectEncoding(double ps, uint64_t m) : ps_(ps), m_(m) {}
  double ps_;
  uint64_t m_;
};

}  // namespace ldpm

#endif  // LDPM_MECHANISMS_DIRECT_ENCODING_H_
