// Sharded parallel aggregation engine.
//
// The paper describes a single logical collector of user reports; at
// production scale the collector must absorb reports from millions of users
// at hardware speed. Every protocol's aggregator state is trivially
// mergeable — additive count/coefficient accumulators or append-only report
// logs (MarginalProtocol::MergeFrom) — so ingest parallelizes by sharding:
//
//   * the engine owns S independent MarginalProtocol instances, one per
//     shard, each with a deterministically derived Rng stream;
//   * producers enqueue batches of reports (or raw rows to encode) onto
//     per-shard bounded queues; one worker thread per shard drains its
//     queue into its shard aggregator with no cross-shard synchronization;
//   * queries merge the shard states on demand into a cached combined
//     aggregator and answer from it, so an idle engine pays the merge once
//     no matter how many marginals are asked.
//
// Determinism: feeding a fixed report stream through any shard count yields
// bitwise-identical estimates to a single aggregator, because per-report
// state increments are integer-valued (exactly representable in doubles)
// and addition over them is associative. Row ingest uses the per-shard Rng
// streams and is distribution-equivalent across shard counts.

#ifndef LDPM_ENGINE_SHARDED_AGGREGATOR_H_
#define LDPM_ENGINE_SHARDED_AGGREGATOR_H_

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/sync.h"
#include "engine/ingest_budget.h"
#include "engine/ingest_stats.h"
#include "engine/shard_queue.h"
#include "obs/metrics.h"
#include "protocols/factory.h"

namespace ldpm {
namespace engine {

/// Engine-level configuration.
struct EngineOptions {
  /// Number of shards (and worker threads). 1 reproduces the single-
  /// aggregator deployment behind the same interface.
  int num_shards = 1;
  /// Reports coalesced per batch by the single-report Ingest() path.
  size_t batch_size = 4096;
  /// Per-shard queue bound; producers block when a shard falls this far
  /// behind (backpressure).
  size_t max_pending_batches = 64;
  /// Base seed for the per-shard Rng streams (row ingest / fast path).
  uint64_t seed = 0x5EED;
  /// Destination of background checkpoints (engine/checkpoint.h format).
  /// Must be non-empty when checkpoint_every_batches > 0.
  std::string checkpoint_path;
  /// Background checkpoint cadence: after every N enqueued batches a
  /// dedicated checkpointer thread snapshots the shard states and
  /// atomically rewrites checkpoint_path. 0 disables the checkpointer.
  /// Ingest never blocks on disk: the cadence piggybacks on the batch
  /// counter the queues already maintain, and the snapshot capture takes
  /// each shard's state lock only as long as a merge would.
  uint64_t checkpoint_every_batches = 0;
  /// Write a final checkpoint to checkpoint_path on Drain() and in the
  /// destructor, so a clean shutdown never loses the tail of the stream
  /// between two background-cadence checkpoints. Requires a non-empty
  /// checkpoint_path (cadence may stay 0 for a shutdown-only checkpoint).
  bool checkpoint_on_shutdown = false;
  /// Checkpoint generations kept on disk (engine/checkpoint.h): each
  /// write rotates checkpoint_path -> .1 -> .2 ... before installing the
  /// new file, and RestoreFrom falls back newest-to-oldest past corrupt
  /// generations (quarantining them as *.corrupt). 1 keeps only the
  /// newest file — the original behavior.
  int checkpoint_generations = 1;
  /// Backoff schedule of the background checkpointer's write retries: a
  /// failed cadence checkpoint (disk full, transient I/O error) is retried
  /// after this delay, doubling up to the max, until it succeeds or the
  /// engine stops. The sticky LastCheckpointError() is set while failing
  /// and cleared by the first success.
  std::chrono::milliseconds checkpoint_retry_initial_backoff{100};
  std::chrono::milliseconds checkpoint_retry_max_backoff{5000};
  /// Optional engine-wide backpressure budget shared with other engines
  /// (the Collector gives every collection the same one). When set, each
  /// ingest call acquires a slot before enqueueing — blocking while the
  /// whole group's in-flight work is at the budget's limit — and the shard
  /// worker releases it after absorbing the item.
  std::shared_ptr<IngestBudget> shared_budget;
  /// Where this engine publishes its operational metrics (throughput
  /// counters, queue-depth gauges, absorb/budget-wait/checkpoint latency
  /// histograms — docs/observability.md catalogs them). Null gives the
  /// engine a private registry, so instrumentation is always on (the
  /// counters double as the IngestStats source of truth) but invisible
  /// until a registry is shared. The registry must outlive the engine.
  /// Two engines sharing a registry AND a metrics_collection label share
  /// series — give each engine a distinct label (the Collector does).
  obs::MetricsRegistry* metrics = nullptr;
  /// Value of the {collection="..."} label on every metric this engine
  /// emits; empty emits unlabeled series (single-engine deployments).
  std::string metrics_collection;
};

/// Builds one aggregator instance; called once per shard plus once for the
/// merged query-side instance, so it must be repeatable. Use this overload
/// for protocols outside the factory enum (oracle-backed paths, custom
/// parameterizations).
using ProtocolFactory =
    std::function<StatusOr<std::unique_ptr<MarginalProtocol>>()>;

/// The multi-core collector: S shard aggregators fed by bounded queues,
/// merged on demand for queries, snapshot/checkpoint-able for re-sharding
/// and restart-without-replay (see the file comment and
/// docs/architecture.md for the dataflow).
class ShardedAggregator {
 public:
  /// Creates an engine whose shards run `kind` under `config`.
  static StatusOr<std::unique_ptr<ShardedAggregator>> Create(
      ProtocolKind kind, const ProtocolConfig& config,
      const EngineOptions& options = EngineOptions());

  /// Creates an engine from an arbitrary protocol factory.
  static StatusOr<std::unique_ptr<ShardedAggregator>> Create(
      const ProtocolFactory& factory,
      const EngineOptions& options = EngineOptions());

  /// Drains and joins all workers; with checkpoint_on_shutdown set, writes
  /// a best-effort final checkpoint after the workers stop (use Drain()
  /// first when the write's Status matters).
  ~ShardedAggregator();

  ShardedAggregator(const ShardedAggregator&) = delete;
  ShardedAggregator& operator=(const ShardedAggregator&) = delete;

  /// Number of shards (== worker threads) this engine runs.
  int num_shards() const { return static_cast<int>(shards_.size()); }
  /// Display name of the hosted protocol ("InpHT", ...).
  std::string_view protocol_name() const {
    core::MutexLock lock(shards_[0]->state_mu);
    return shards_[0]->protocol->name();
  }
  /// The configuration every shard protocol was created with (immutable
  /// after construction, so the returned reference outlives the lock).
  const ProtocolConfig& config() const {
    core::MutexLock lock(shards_[0]->state_mu);
    return shards_[0]->protocol->config();
  }

  // ---- Ingest (thread-safe) ----------------------------------------------

  /// Enqueues one report; coalesced into batches of options.batch_size.
  Status Ingest(const Report& report);

  /// Enqueues a batch of pre-encoded reports onto the next shard
  /// (round-robin). Blocks when that shard's queue is full. The worker
  /// absorbs the batch through the protocol's columnar AbsorbBatch path.
  Status IngestBatch(std::vector<Report> reports);

  /// Enqueues a wire batch frame (protocols/wire.h: u32-length-prefixed
  /// SerializeReport records) onto the next shard. The worker parses and
  /// absorbs the records in place via AbsorbWireBatch — the zero-copy path
  /// from network bytes to protocol state.
  Status IngestWireBatch(std::vector<uint8_t> frame);

  /// Enqueues raw user rows; the receiving shard's worker encodes them with
  /// the shard's own Rng stream and absorbs the reports. With `fast_path`
  /// the worker uses the protocol's distribution-exact AbsorbPopulation.
  Status IngestRows(std::vector<uint64_t> rows, bool fast_path = false);

  /// Splits a population across all shards in contiguous chunks and ingests
  /// each chunk as row work. Distribution-equivalent to a single
  /// aggregator's AbsorbPopulation.
  Status IngestPopulation(const std::vector<uint64_t>& rows,
                          bool fast_path = true);

  /// Barrier: blocks until every enqueued item (including the coalescing
  /// buffer) has been absorbed, then reports the first worker error, if any.
  Status Flush();

  /// Flush plus the shutdown checkpoint (when checkpoint_on_shutdown is
  /// set): the graceful-shutdown barrier whose Status callers can check,
  /// unlike the destructor's best-effort final write. The engine stays
  /// usable afterwards.
  Status Drain();

  // ---- Query -------------------------------------------------------------

  /// Flushes, merges shard state (cached until the next ingest), and
  /// estimates the marginal for selector beta.
  StatusOr<MarginalTable> EstimateMarginal(uint64_t beta);

  /// Flushes and exposes the merged aggregator (owned by the engine; valid
  /// until the next ingest/Reset/Restore).
  StatusOr<const MarginalProtocol*> Merged();

  // ---- Introspection -----------------------------------------------------

  /// Flushes and reports ingest throughput over the window since the first
  /// ingest after construction/Reset.
  StatusOr<IngestStats> Stats();

  /// Total reports absorbed by all shards (flushes first).
  StatusOr<uint64_t> ReportsAbsorbed();

  // ---- State management --------------------------------------------------

  /// Flushes and captures one snapshot per shard. Restoring the set into an
  /// engine with ANY shard count (see RestoreShards) reproduces the merged
  /// state exactly — the crash-free re-sharding path.
  StatusOr<std::vector<AggregatorSnapshot>> SnapshotShards();

  /// Replaces all shard state with the given snapshots, distributing them
  /// round-robin over this engine's shards (snapshot count need not match
  /// the shard count).
  Status RestoreShards(const std::vector<AggregatorSnapshot>& snapshots);

  /// Flushes and clears all shard state and the stats window.
  Status Reset();

  // ---- Durable checkpoints (engine/checkpoint.h) -------------------------

  /// Flushes, snapshots every shard, and atomically writes the set to
  /// `path` in the versioned checkpoint file format. The written file
  /// restores — into an engine with ANY shard count — a merged state
  /// bitwise-identical to this engine's state at the time of the call.
  Status CheckpointTo(const std::string& path);

  /// Reads a checkpoint file and replaces all shard state with it (the
  /// restart-without-replay path). The checkpoint may have been taken at a
  /// different shard count; snapshots are redistributed round-robin (see
  /// RestoreShards). On any error — missing file, corruption, protocol or
  /// config mismatch — the engine's current state is left unchanged.
  Status RestoreFrom(const std::string& path);

  /// Number of checkpoints the background checkpointer has written since
  /// construction (explicit CheckpointTo calls are not counted).
  uint64_t checkpoints_written() const {
    return checkpoints_written_.load(std::memory_order_relaxed);
  }

  /// Most recent unresolved error of the background checkpointer: set by
  /// a failed cadence write, sticky until the retry loop's next success
  /// (or Reset) clears it. OK
  /// when checkpointing is disabled or has always succeeded.
  Status LastCheckpointError();

  /// The registry this engine's metrics live in (the options' registry,
  /// or the engine-private one when none was given). Valid for the
  /// engine's lifetime; scrape it or hand it to a net::StatsServer.
  obs::MetricsRegistry* metrics() const { return metrics_; }

 private:
  struct Shard {
    /// Serializes the worker's state mutation against control-plane reads
    /// (merge, stats, snapshot); held per work item, so uncontended in
    /// steady state.
    core::Mutex state_mu;
    /// The pointer itself is set once in Create (before the worker starts);
    /// the protocol state behind it mutates only under state_mu.
    std::unique_ptr<MarginalProtocol> protocol LDPM_PT_GUARDED_BY(state_mu);
    Rng rng LDPM_GUARDED_BY(state_mu){0};
    ShardQueue queue;
    std::thread worker;
    /// First absorb/encode error, sticky until Reset.
    Status error LDPM_GUARDED_BY(state_mu);
    /// Live work items on this shard's queue (producer +1, worker -1
    /// after absorb) and the high-water mark it has reached.
    obs::Gauge* queue_depth = nullptr;
    obs::Gauge* queue_depth_hwm = nullptr;

    explicit Shard(size_t max_pending) : queue(max_pending) {}
  };

  ShardedAggregator(ProtocolFactory factory, const EngineOptions& options);

  /// Creates/caches this engine's metric instruments in metrics_ (labeled
  /// with options.metrics_collection). Called once from Create.
  void InitMetrics();

  void WorkerLoop(Shard& shard);
  void NoteIngestStarted();
  /// The common enqueue tail: budget acquire (timed), queue push, depth
  /// gauges, batch counter, checkpointer wakeup.
  Status EnqueueWork(WorkItem item);
  Status FlushPending();  // pushes the coalescing buffer, if any
  Status DrainAndCollectErrors();

  /// Snapshots every shard (without a flush barrier) and atomically writes
  /// the checkpoint file. Called by the background checkpointer; each
  /// shard's snapshot is taken under its state lock, so the set is a
  /// consistent per-shard prefix of the absorbed stream.
  Status WriteCheckpointNow(const std::string& path)
      LDPM_EXCLUDES(state_cut_mu_, ckpt_mu_);
  void CheckpointLoop() LDPM_EXCLUDES(ckpt_mu_);
  void MaybeWakeCheckpointer() LDPM_EXCLUDES(ckpt_mu_);

  ProtocolFactory factory_;
  EngineOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;

  /// Metrics destination (never null after Create) and, when the options
  /// brought no registry, the engine-private one backing it. These
  /// counters ARE the throughput accounting: IngestStats is a windowed
  /// view over them (see Stats()/Reset()), not a parallel tally.
  obs::MetricsRegistry* metrics_ = nullptr;
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::Counter* reports_total_ = nullptr;        // absorbed, all shards
  obs::Counter* batches_total_ = nullptr;        // work items enqueued
  obs::Counter* report_bits_total_ = nullptr;    // paper Table-2 bits
  obs::Histogram* absorb_latency_ = nullptr;     // per work item, ns
  obs::Histogram* budget_wait_ = nullptr;        // shared-budget waits, ns
  obs::Counter* ckpt_writes_total_ = nullptr;    // successful writes (all)
  obs::Counter* ckpt_errors_total_ = nullptr;
  obs::Counter* ckpt_bytes_total_ = nullptr;     // encoded bytes written
  obs::Histogram* ckpt_duration_ = nullptr;      // encode+write, ns

  core::Mutex pending_mu_;
  /// Single-report coalescing buffer.
  std::vector<Report> pending_ LDPM_GUARDED_BY(pending_mu_);

  std::atomic<uint64_t> next_shard_{0};

  /// Monotonic count of ingest/restore/reset events. The merged cache is
  /// valid only for the epoch it was built at; comparing epochs (instead of
  /// a clearable flag) cannot lose an invalidation that lands mid-merge.
  std::atomic<uint64_t> ingest_epoch_{0};
  core::Mutex merge_mu_;
  std::unique_ptr<MarginalProtocol> merged_ LDPM_GUARDED_BY(merge_mu_);
  uint64_t merged_epoch_ LDPM_GUARDED_BY(merge_mu_) = ~uint64_t{0};

  /// Makes cross-shard state transitions atomic against snapshot capture:
  /// held across the whole shard loop by Snapshot/checkpoint capture and
  /// by Reset/RestoreShards, so a background checkpoint racing a reset or
  /// restore sees all shards before or all shards after, never a mix
  /// (per-shard state_mu alone orders only within one shard). Always
  /// acquired before any state_mu, never the other way around
  /// (docs/operations.md, "Lock ordering").
  core::Mutex state_cut_mu_;

  core::Mutex window_mu_;
  bool window_open_ LDPM_GUARDED_BY(window_mu_) = false;
  std::chrono::steady_clock::time_point window_start_
      LDPM_GUARDED_BY(window_mu_);
  /// Batch-counter value at the last Reset: the registry counter is
  /// monotonic for the scrapers' sake, so the resettable IngestStats
  /// window subtracts this baseline instead of zeroing it. (Reports and
  /// bits need no baseline — Reset clears the shard protocols they are
  /// read from.)
  uint64_t window_base_batches_ LDPM_GUARDED_BY(window_mu_) = 0;

  /// Background checkpointer (started only when the cadence is enabled).
  /// The worker sleeps on ckpt_cv_ until the enqueued-batch counter runs
  /// checkpoint_every_batches past the last checkpoint; ingest paths only
  /// ever notify the condvar — they never touch the disk.
  std::thread checkpoint_worker_;
  core::Mutex ckpt_mu_;  // guards ckpt_stop_ / ckpt_error_ and the cv wait
  core::CondVar ckpt_cv_;
  bool ckpt_stop_ LDPM_GUARDED_BY(ckpt_mu_) = false;
  Status ckpt_error_ LDPM_GUARDED_BY(ckpt_mu_);
  std::atomic<uint64_t> last_checkpoint_batches_{0};
  std::atomic<uint64_t> checkpoints_written_{0};
};

}  // namespace engine
}  // namespace ldpm

#endif  // LDPM_ENGINE_SHARDED_AGGREGATOR_H_
