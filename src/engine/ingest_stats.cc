#include "engine/ingest_stats.h"

#include <cstdio>

namespace ldpm {
namespace engine {

std::string IngestStats::ToString() const {
  char head[192];
  std::snprintf(
      head, sizeof(head),
      "%llu reports in %llu batches in %.3fs (%.3g reports/s, %.3g bits/s), "
      "shards [",
      static_cast<unsigned long long>(reports),
      static_cast<unsigned long long>(batches), wall_seconds,
      reports_per_second, bits_per_second);
  std::string out(head);
  for (size_t i = 0; i < per_shard_reports.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(per_shard_reports[i]);
  }
  out += "]";
  return out;
}

}  // namespace engine
}  // namespace ldpm
