#include "engine/sharded_aggregator.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "core/file_io.h"
#include "engine/checkpoint.h"

namespace ldpm {
namespace engine {

namespace {

/// Hard cap on shard count; far above any sensible core count, it only
/// guards against accidental huge values spawning thousands of threads.
constexpr int kMaxShards = 1024;

/// Series name for an engine metric, labeled with the collection id when
/// the engine runs under one (plus an optional shard label).
std::string MetricName(const char* base, const std::string& collection) {
  if (collection.empty()) return base;
  return obs::WithLabels(base, {{"collection", collection}});
}

std::string ShardMetricName(const char* base, const std::string& collection,
                            size_t shard) {
  const std::string shard_label = std::to_string(shard);
  if (collection.empty()) {
    return obs::WithLabels(base, {{"shard", shard_label}});
  }
  return obs::WithLabels(base,
                         {{"collection", collection}, {"shard", shard_label}});
}

}  // namespace

StatusOr<std::unique_ptr<ShardedAggregator>> ShardedAggregator::Create(
    ProtocolKind kind, const ProtocolConfig& config,
    const EngineOptions& options) {
  return Create([kind, config] { return CreateProtocol(kind, config); },
                options);
}

StatusOr<std::unique_ptr<ShardedAggregator>> ShardedAggregator::Create(
    const ProtocolFactory& factory, const EngineOptions& options) {
  if (!factory) {
    return Status::InvalidArgument("ShardedAggregator: null protocol factory");
  }
  if (options.num_shards < 1 || options.num_shards > kMaxShards) {
    return Status::InvalidArgument(
        "ShardedAggregator: num_shards must be in [1, " +
        std::to_string(kMaxShards) + "], got " +
        std::to_string(options.num_shards));
  }
  if (options.batch_size < 1 || options.max_pending_batches < 1) {
    return Status::InvalidArgument(
        "ShardedAggregator: batch_size and max_pending_batches must be >= 1");
  }
  if (options.checkpoint_every_batches > 0 && options.checkpoint_path.empty()) {
    return Status::InvalidArgument(
        "ShardedAggregator: checkpoint_every_batches > 0 requires a "
        "checkpoint_path");
  }
  if (options.checkpoint_on_shutdown && options.checkpoint_path.empty()) {
    return Status::InvalidArgument(
        "ShardedAggregator: checkpoint_on_shutdown requires a "
        "checkpoint_path");
  }
  // Build every shard aggregator up front so a bad factory/config fails the
  // construction rather than the first ingest.
  std::unique_ptr<ShardedAggregator> engine(
      new ShardedAggregator(factory, options));
  Rng seeder(options.seed);
  for (int s = 0; s < options.num_shards; ++s) {
    auto shard = std::make_unique<Shard>(options.max_pending_batches);
    auto protocol = factory();
    if (!protocol.ok()) return protocol.status();
    {
      // No worker exists yet; the lock exists for the analysis (rng and the
      // protocol state are guarded by state_mu) and is uncontended.
      core::MutexLock state_lock(shard->state_mu);
      shard->protocol = *std::move(protocol);
      shard->rng = seeder.Fork();
    }
    engine->shards_.push_back(std::move(shard));
  }
  // Instruments must exist before any worker runs (workers time absorbs
  // and decrement queue-depth gauges from their first item).
  engine->InitMetrics();
  for (auto& shard : engine->shards_) {
    Shard* s = shard.get();
    s->worker = std::thread([engine_ptr = engine.get(), s] {
      engine_ptr->WorkerLoop(*s);
    });
  }
  if (options.checkpoint_every_batches > 0) {
    engine->checkpoint_worker_ = std::thread(
        [engine_ptr = engine.get()] { engine_ptr->CheckpointLoop(); });
  }
  return engine;
}

ShardedAggregator::ShardedAggregator(ProtocolFactory factory,
                                     const EngineOptions& options)
    : factory_(std::move(factory)), options_(options) {}

void ShardedAggregator::InitMetrics() {
  if (options_.metrics != nullptr) {
    metrics_ = options_.metrics;
  } else {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  const std::string& id = options_.metrics_collection;
  reports_total_ = metrics_->GetCounter(
      MetricName("ldpm_engine_reports_absorbed_total", id),
      "Reports absorbed across all shards");
  batches_total_ = metrics_->GetCounter(
      MetricName("ldpm_engine_batches_enqueued_total", id),
      "Work items enqueued onto shard queues");
  report_bits_total_ = metrics_->GetCounter(
      MetricName("ldpm_engine_report_bits_total", id),
      "Measured communication absorbed, in bits (paper Table 2)");
  absorb_latency_ = metrics_->GetHistogram(
      MetricName("ldpm_engine_absorb_latency_ns", id), obs::LatencyBuckets(),
      "Shard-worker latency absorbing one work item");
  budget_wait_ = metrics_->GetHistogram(
      MetricName("ldpm_engine_budget_wait_ns", id), obs::LatencyBuckets(),
      "Producer wait for a shared ingest-budget slot");
  ckpt_writes_total_ = metrics_->GetCounter(
      MetricName("ldpm_engine_checkpoint_writes_total", id),
      "Successful checkpoint writes (explicit, background, shutdown)");
  ckpt_errors_total_ = metrics_->GetCounter(
      MetricName("ldpm_engine_checkpoint_errors_total", id),
      "Failed checkpoint write attempts");
  ckpt_bytes_total_ = metrics_->GetCounter(
      MetricName("ldpm_engine_checkpoint_bytes_total", id),
      "Encoded checkpoint bytes successfully written");
  ckpt_duration_ = metrics_->GetHistogram(
      MetricName("ldpm_engine_checkpoint_duration_ns", id),
      obs::LatencyBuckets(), "Checkpoint capture+encode+write duration");
  for (size_t s = 0; s < shards_.size(); ++s) {
    shards_[s]->queue_depth = metrics_->GetGauge(
        ShardMetricName("ldpm_engine_queue_depth", id, s),
        "Work items pending on this shard's queue");
    shards_[s]->queue_depth_hwm = metrics_->GetGauge(
        ShardMetricName("ldpm_engine_queue_depth_high_water", id, s),
        "Highest queue depth this shard has reached");
  }
  // A shared registry can refuse a name only on a kind collision — a
  // programmer error (two subsystems fighting over one series name), not
  // a recoverable state, so fail loudly at construction.
  LDPM_CHECK(reports_total_ && batches_total_ && report_bits_total_ &&
             absorb_latency_ && budget_wait_ && ckpt_writes_total_ &&
             ckpt_errors_total_ && ckpt_bytes_total_ && ckpt_duration_);
}

ShardedAggregator::~ShardedAggregator() {
  // Push the single-report coalescing buffer while the workers still run:
  // the shutdown checkpoint below must contain the tail of the stream, not
  // lose up to batch_size - 1 buffered reports.
  (void)FlushPending();
  // Stop the checkpointer first so it cannot observe shards mid-teardown.
  {
    core::MutexLock lock(ckpt_mu_);
    ckpt_stop_ = true;
  }
  ckpt_cv_.NotifyAll();
  if (checkpoint_worker_.joinable()) checkpoint_worker_.join();
  for (auto& shard : shards_) shard->queue.Close();
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
  // Final durable cut after every worker has stopped mutating state. Best
  // effort by necessity (a destructor cannot report); call Drain() first
  // when the write's Status matters.
  if (options_.checkpoint_on_shutdown) {
    (void)WriteCheckpointNow(options_.checkpoint_path);
  }
}

void ShardedAggregator::WorkerLoop(Shard& shard) {
  WorkItem item;
  while (shard.queue.Pop(item)) {
    {
      core::MutexLock state_lock(shard.state_mu);
      const uint64_t reports_before = shard.protocol->reports_absorbed();
      const double bits_before = shard.protocol->total_report_bits();
      // After the first error the shard keeps draining (so Flush terminates)
      // but stops mutating state; the sticky error surfaces at Flush.
      if (shard.error.ok()) {
        obs::ScopedTimer absorb_timer(absorb_latency_);
        if (!item.reports.empty()) {
          shard.error = shard.protocol->AbsorbBatch(item.reports.data(),
                                                    item.reports.size());
        }
        if (shard.error.ok() && !item.wire.empty()) {
          shard.error = shard.protocol->AbsorbWireBatch(item.wire.data(),
                                                        item.wire.size());
        }
        if (shard.error.ok() && !item.rows.empty()) {
          if (item.fast_path) {
            shard.error = shard.protocol->AbsorbPopulation(item.rows, shard.rng);
          } else {
            for (uint64_t row : item.rows) {
              Status status =
                  shard.protocol->Absorb(shard.protocol->Encode(row, shard.rng));
              if (!status.ok()) {
                shard.error = std::move(status);
                break;
              }
            }
          }
        }
      }
      reports_total_->Increment(shard.protocol->reports_absorbed() -
                                reports_before);
      const double bits_delta = shard.protocol->total_report_bits() - bits_before;
      if (bits_delta > 0.0) {
        report_bits_total_->Increment(
            static_cast<uint64_t>(std::llround(bits_delta)));
      }
    }
    shard.queue.Done();
    shard.queue_depth->Add(-1);
    // Release the group-wide slot no matter how absorption went; an error
    // must not leak budget and wedge sibling collections.
    if (options_.shared_budget) options_.shared_budget->Release();
  }
}

void ShardedAggregator::NoteIngestStarted() {
  ingest_epoch_.fetch_add(1, std::memory_order_acq_rel);
  core::MutexLock lock(window_mu_);
  if (!window_open_) {
    window_open_ = true;
    window_start_ = std::chrono::steady_clock::now();
  }
}

Status ShardedAggregator::Ingest(const Report& report) {
  std::vector<Report> ready;
  {
    core::MutexLock lock(pending_mu_);
    pending_.push_back(report);
    if (pending_.size() < options_.batch_size) {
      NoteIngestStarted();
      return Status::OK();
    }
    ready = std::move(pending_);
    pending_.clear();
  }
  return IngestBatch(std::move(ready));
}

Status ShardedAggregator::EnqueueWork(WorkItem item) {
  const size_t target =
      next_shard_.fetch_add(1, std::memory_order_relaxed) % shards_.size();
  if (options_.shared_budget) {
    obs::ScopedTimer wait_timer(budget_wait_);
    options_.shared_budget->Acquire();
  }
  Shard& shard = *shards_[target];
  // Bump the depth gauge before Push so a worker's decrement can never
  // land first and swing the gauge negative.
  shard.queue_depth_hwm->UpdateMax(shard.queue_depth->Add(1));
  if (!shard.queue.Push(std::move(item))) {
    shard.queue_depth->Add(-1);
    if (options_.shared_budget) options_.shared_budget->Release();
    return Status::FailedPrecondition(
        "ShardedAggregator: engine is shutting down");
  }
  batches_total_->Increment();
  MaybeWakeCheckpointer();
  return Status::OK();
}

Status ShardedAggregator::IngestBatch(std::vector<Report> reports) {
  if (reports.empty()) return Status::OK();
  NoteIngestStarted();
  WorkItem item;
  item.reports = std::move(reports);
  return EnqueueWork(std::move(item));
}

Status ShardedAggregator::IngestWireBatch(std::vector<uint8_t> frame) {
  if (frame.empty()) return Status::OK();
  NoteIngestStarted();
  WorkItem item;
  item.wire = std::move(frame);
  return EnqueueWork(std::move(item));
}

Status ShardedAggregator::IngestRows(std::vector<uint64_t> rows,
                                     bool fast_path) {
  if (rows.empty()) return Status::OK();
  NoteIngestStarted();
  WorkItem item;
  item.rows = std::move(rows);
  item.fast_path = fast_path;
  return EnqueueWork(std::move(item));
}

Status ShardedAggregator::IngestPopulation(const std::vector<uint64_t>& rows,
                                           bool fast_path) {
  if (rows.empty()) return Status::OK();
  // Contiguous chunks, one per shard: keeps the fast path's aggregate
  // sampling exact per sub-population and the split deterministic.
  const size_t num_shards = shards_.size();
  const size_t chunk = (rows.size() + num_shards - 1) / num_shards;
  for (size_t begin = 0; begin < rows.size(); begin += chunk) {
    const size_t end = std::min(begin + chunk, rows.size());
    LDPM_RETURN_IF_ERROR(IngestRows(
        std::vector<uint64_t>(rows.begin() + begin, rows.begin() + end),
        fast_path));
  }
  return Status::OK();
}

Status ShardedAggregator::FlushPending() {
  std::vector<Report> ready;
  {
    core::MutexLock lock(pending_mu_);
    if (pending_.empty()) return Status::OK();
    ready = std::move(pending_);
    pending_.clear();
  }
  return IngestBatch(std::move(ready));
}

Status ShardedAggregator::DrainAndCollectErrors() {
  for (auto& shard : shards_) shard->queue.WaitDrained();
  for (size_t s = 0; s < shards_.size(); ++s) {
    core::MutexLock state_lock(shards_[s]->state_mu);
    if (!shards_[s]->error.ok()) {
      return Status(shards_[s]->error.code(),
                    "shard " + std::to_string(s) + ": " +
                        shards_[s]->error.message());
    }
  }
  return Status::OK();
}

Status ShardedAggregator::Flush() {
  LDPM_RETURN_IF_ERROR(FlushPending());
  return DrainAndCollectErrors();
}

Status ShardedAggregator::Drain() {
  LDPM_RETURN_IF_ERROR(Flush());
  if (options_.checkpoint_on_shutdown) {
    return WriteCheckpointNow(options_.checkpoint_path);
  }
  return Status::OK();
}

StatusOr<const MarginalProtocol*> ShardedAggregator::Merged() {
  core::MutexLock merge_lock(merge_mu_);
  // Push the coalescing buffer first (it bumps the epoch), THEN record the
  // epoch, then drain: work that lands during the drain or the merge is
  // included in the shard states we read but not in the recorded epoch, so
  // the next query conservatively rebuilds.
  LDPM_RETURN_IF_ERROR(FlushPending());
  const uint64_t epoch = ingest_epoch_.load(std::memory_order_acquire);
  LDPM_RETURN_IF_ERROR(DrainAndCollectErrors());
  if (merged_ == nullptr || merged_epoch_ != epoch) {
    auto merged = factory_();
    if (!merged.ok()) return merged.status();
    for (auto& shard : shards_) {
      core::MutexLock state_lock(shard->state_mu);
      LDPM_RETURN_IF_ERROR((*merged)->MergeFrom(*shard->protocol));
    }
    merged_ = *std::move(merged);
    merged_epoch_ = epoch;
  }
  return static_cast<const MarginalProtocol*>(merged_.get());
}

StatusOr<MarginalTable> ShardedAggregator::EstimateMarginal(uint64_t beta) {
  auto merged = Merged();
  if (!merged.ok()) return merged.status();
  return (*merged)->EstimateMarginal(beta);
}

StatusOr<IngestStats> ShardedAggregator::Stats() {
  LDPM_RETURN_IF_ERROR(Flush());
  IngestStats stats;
  {
    // The registry counter is monotonic (the Prometheus contract); the
    // stats window subtracts the baseline recorded at the last Reset().
    core::MutexLock lock(window_mu_);
    stats.batches = batches_total_->Value() - window_base_batches_;
  }
  for (auto& shard : shards_) {
    core::MutexLock state_lock(shard->state_mu);
    stats.per_shard_reports.push_back(shard->protocol->reports_absorbed());
    stats.reports += shard->protocol->reports_absorbed();
    stats.bits += shard->protocol->total_report_bits();
  }
  {
    core::MutexLock lock(window_mu_);
    if (window_open_) {
      stats.wall_seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - window_start_)
                               .count();
    }
  }
  if (stats.wall_seconds > 0.0) {
    stats.reports_per_second =
        static_cast<double>(stats.reports) / stats.wall_seconds;
    stats.bits_per_second = stats.bits / stats.wall_seconds;
  }
  return stats;
}

StatusOr<uint64_t> ShardedAggregator::ReportsAbsorbed() {
  LDPM_RETURN_IF_ERROR(Flush());
  uint64_t total = 0;
  for (auto& shard : shards_) {
    core::MutexLock state_lock(shard->state_mu);
    total += shard->protocol->reports_absorbed();
  }
  return total;
}

StatusOr<std::vector<AggregatorSnapshot>> ShardedAggregator::SnapshotShards() {
  LDPM_RETURN_IF_ERROR(Flush());
  std::vector<AggregatorSnapshot> snapshots;
  snapshots.reserve(shards_.size());
  core::MutexLock cut_lock(state_cut_mu_);
  for (auto& shard : shards_) {
    core::MutexLock state_lock(shard->state_mu);
    snapshots.push_back(shard->protocol->Snapshot());
  }
  return snapshots;
}

Status ShardedAggregator::RestoreShards(
    const std::vector<AggregatorSnapshot>& snapshots) {
  LDPM_RETURN_IF_ERROR(Flush());
  // Stage each snapshot in a scratch instance first so a malformed snapshot
  // list cannot leave the engine half-restored.
  std::vector<std::unique_ptr<MarginalProtocol>> staged;
  staged.reserve(snapshots.size());
  for (const AggregatorSnapshot& snapshot : snapshots) {
    auto scratch = factory_();
    if (!scratch.ok()) return scratch.status();
    LDPM_RETURN_IF_ERROR((*scratch)->Restore(snapshot));
    staged.push_back(*std::move(scratch));
  }
  {
    core::MutexLock cut_lock(state_cut_mu_);
    for (auto& shard : shards_) {
      core::MutexLock state_lock(shard->state_mu);
      shard->protocol->Reset();
    }
    for (size_t i = 0; i < staged.size(); ++i) {
      Shard& target = *shards_[i % shards_.size()];
      core::MutexLock state_lock(target.state_mu);
      LDPM_RETURN_IF_ERROR(target.protocol->MergeFrom(*staged[i]));
    }
  }
  ingest_epoch_.fetch_add(1, std::memory_order_acq_rel);
  return Status::OK();
}

Status ShardedAggregator::CheckpointTo(const std::string& path) {
  // The flush barrier makes the checkpoint an exact cut: everything
  // enqueued before this call is in the written state.
  LDPM_RETURN_IF_ERROR(Flush());
  return WriteCheckpointNow(path);
}

Status ShardedAggregator::RestoreFrom(const std::string& path) {
  // Walk the generations newest-to-oldest: a corrupt newest checkpoint
  // (torn write, bit rot) falls back to the previous one instead of
  // failing the restart, and the corrupt file is quarantined as
  // *.corrupt.
  auto snapshots =
      ReadCheckpointWithFallback(path, options_.checkpoint_generations);
  if (!snapshots.ok()) return snapshots.status();
  return RestoreShards(*snapshots);
}

Status ShardedAggregator::LastCheckpointError() {
  core::MutexLock lock(ckpt_mu_);
  return ckpt_error_;
}

Status ShardedAggregator::WriteCheckpointNow(const std::string& path) {
  obs::ScopedTimer ckpt_timer(ckpt_duration_);
  std::vector<AggregatorSnapshot> snapshots;
  snapshots.reserve(shards_.size());
  {
    core::MutexLock cut_lock(state_cut_mu_);
    for (auto& shard : shards_) {
      core::MutexLock state_lock(shard->state_mu);
      snapshots.push_back(shard->protocol->Snapshot());
    }
  }
  // The disk write happens outside the cut lock: only the in-memory
  // capture needs atomicity against Reset/RestoreShards. Encode and write
  // as separate steps so the image size is observable.
  auto image = EncodeCheckpoint(snapshots);
  Status status = image.status();
  if (status.ok()) {
    status = RotateCheckpointGenerations(path, options_.checkpoint_generations);
  }
  if (status.ok()) status = WriteBinaryFileAtomic(path, *image);
  if (status.ok()) {
    ckpt_writes_total_->Increment();
    ckpt_bytes_total_->Increment(image->size());
  } else {
    ckpt_errors_total_->Increment();
  }
  return status;
}

void ShardedAggregator::MaybeWakeCheckpointer() {
  if (options_.checkpoint_every_batches == 0) return;
  if (batches_total_->Value() -
          last_checkpoint_batches_.load(std::memory_order_relaxed) >=
      options_.checkpoint_every_batches) {
    // Synchronize through the mutex so the wakeup cannot slip between the
    // checkpointer's predicate check and its wait (same pattern as
    // ShardQueue::WakeIdleConsumer). Uncontended except in the short
    // window between crossing the cadence and the checkpoint starting.
    { core::MutexLock lock(ckpt_mu_); }
    ckpt_cv_.NotifyOne();
  }
}

void ShardedAggregator::CheckpointLoop() {
  core::ReleasableMutexLock lock(ckpt_mu_);
  auto backoff = options_.checkpoint_retry_initial_backoff;
  bool retrying = false;
  for (;;) {
    if (retrying) {
      // The last write failed (disk full, transient I/O error): hold the
      // trigger and retry after a capped backoff instead of waiting for
      // the next cadence crossing — the failed interval's data is exactly
      // what a crash would lose. Stop-aware: shutdown interrupts the wait.
      const auto deadline = std::chrono::steady_clock::now() + backoff;
      while (!ckpt_stop_) {
        const auto now = std::chrono::steady_clock::now();
        if (now >= deadline) break;
        ckpt_cv_.WaitFor(ckpt_mu_, deadline - now);
      }
    } else {
      while (!ckpt_stop_ &&
             batches_total_->Value() -
                     last_checkpoint_batches_.load(std::memory_order_relaxed) <
                 options_.checkpoint_every_batches) {
        ckpt_cv_.Wait(ckpt_mu_);
      }
    }
    if (ckpt_stop_) return;
    // Record the trigger point before writing so a steady ingest stream
    // produces one checkpoint per cadence interval, not one per batch.
    last_checkpoint_batches_.store(batches_total_->Value(),
                                   std::memory_order_relaxed);
    lock.Release();
    // Without a flush barrier: the background checkpoint is a consistent
    // per-shard prefix of the stream (each shard snapshot is atomic with
    // respect to work items), captured and written while ingest continues.
    Status status = WriteCheckpointNow(options_.checkpoint_path);
    lock.Reacquire();
    if (status.ok()) {
      checkpoints_written_.fetch_add(1, std::memory_order_relaxed);
      // The durable state on disk is current again; an error left sticky
      // here would outlive the condition it reported.
      ckpt_error_ = Status::OK();
      retrying = false;
      backoff = options_.checkpoint_retry_initial_backoff;
    } else {
      ckpt_error_ = std::move(status);
      retrying = true;
      backoff = std::min(backoff * 2, options_.checkpoint_retry_max_backoff);
    }
  }
}

Status ShardedAggregator::Reset() {
  LDPM_RETURN_IF_ERROR(FlushPending());
  for (auto& shard : shards_) shard->queue.WaitDrained();
  {
    core::MutexLock cut_lock(state_cut_mu_);
    for (auto& shard : shards_) {
      core::MutexLock state_lock(shard->state_mu);
      shard->protocol->Reset();
      shard->error = Status::OK();
    }
  }
  ingest_epoch_.fetch_add(1, std::memory_order_acq_rel);
  {
    // The registry counter stays monotonic across Reset (the Prometheus
    // contract), so restart the cadence from its current value instead of
    // zeroing; the unsigned difference can never wrap.
    core::MutexLock ckpt_lock(ckpt_mu_);
    last_checkpoint_batches_.store(batches_total_->Value(),
                                   std::memory_order_relaxed);
    ckpt_error_ = Status::OK();
  }
  {
    core::MutexLock merge_lock(merge_mu_);
    merged_.reset();
  }
  core::MutexLock lock(window_mu_);
  window_open_ = false;
  window_base_batches_ = batches_total_->Value();
  return Status::OK();
}

}  // namespace engine
}  // namespace ldpm
