// Durable checkpointing of aggregator state: a versioned binary container
// for std::vector<AggregatorSnapshot>, so a sharded engine can restart
// without replaying the wire stream (docs/wire-format.md specifies every
// byte).
//
// Two container versions share the 20-byte header (all integers
// little-endian, mirroring the u32 length-prefix framing of
// protocols/wire.h):
//
//   header (20 bytes)
//     [0,8)    magic "LDPMCKPT"
//     [8,12)   u32 format version (1 or 2)
//     [12,16)  u32 record count (v1: snapshots S; v2: collections C)
//     [16,20)  u32 CRC-32C over bytes [0,16)
//
// Version 1 — one anonymous collection (what ShardedAggregator writes):
//   record, S times
//     u32      payload length L
//     L bytes  snapshot payload (SerializeSnapshot encoding)
//     u32      CRC-32C over the L payload bytes
//
// Version 2 — the multi-collection container (what Collector writes):
//   collection block, C times
//     u16      collection id byte length (>= 1)
//     bytes    collection id
//     u32      snapshot count S for this collection
//     u32      CRC-32C over this block's preceding bytes (id length
//              prefix, id, snapshot count)
//     record, S times — identical to the v1 record layout
//
// Both versions end exactly after the last record; trailing bytes are
// treated as corruption. Loading validates magic, header CRC, version
// (files with a newer version are rejected rather than misparsed —
// forward compat), record framing, and every CRC, so truncation and bit
// flips anywhere in the file surface as a Status error instead of
// silently restoring biased state. V2 readers restore v1 files as a
// single collection with an empty id.
//
// The snapshot payload is protocol-agnostic (the flattened accumulator
// arrays of AggregatorSnapshot), so the container also checkpoints
// protocols without a wire format (InpOLH, InpHTCMS) through the engine's
// factory path.

#ifndef LDPM_ENGINE_CHECKPOINT_H_
#define LDPM_ENGINE_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "protocols/protocol.h"

namespace ldpm {
namespace engine {

/// Newest checkpoint file format version this build reads and writes
/// (the multi-collection container).
inline constexpr uint32_t kCheckpointFormatVersion = 2;

/// The single-collection container version (EncodeCheckpoint's output),
/// kept as the write format of ShardedAggregator checkpoints so per-
/// collection files stay restorable by older builds.
inline constexpr uint32_t kCheckpointFormatVersionV1 = 1;

/// The 8 magic bytes at offset 0 of every checkpoint file.
inline constexpr char kCheckpointMagic[8] = {'L', 'D', 'P', 'M',
                                             'C', 'K', 'P', 'T'};

/// One named collection's worth of checkpoint state: the per-shard
/// snapshots of the engine backing it.
struct CollectionCheckpoint {
  std::string id;
  std::vector<AggregatorSnapshot> snapshots;
};

/// Serializes one snapshot into a record payload (the bytes a checkpoint
/// record length-prefixes and checksums).
std::vector<uint8_t> SerializeSnapshot(const AggregatorSnapshot& snapshot);

/// Parses a record payload back into a snapshot; the inverse of
/// SerializeSnapshot. Rejects truncated or over-long payloads and
/// out-of-range enum encodings with a precise error.
StatusOr<AggregatorSnapshot> DeserializeSnapshot(const uint8_t* data,
                                                 size_t size);

/// Encodes a single-collection (version 1) checkpoint image (header +
/// records + checksums). InvalidArgument if the snapshot count or a record
/// payload overflows the u32 framing fields (nothing unrestorable is ever
/// produced).
StatusOr<std::vector<uint8_t>> EncodeCheckpoint(
    const std::vector<AggregatorSnapshot>& snapshots);

/// Decodes and validates a single-collection checkpoint image; the inverse
/// of EncodeCheckpoint. Also accepts a version-2 image that holds exactly
/// one collection (the id is dropped); a multi-collection image is
/// rejected with a message pointing at Collector::RestoreFrom. Any
/// framing, version, or checksum violation is an InvalidArgument naming
/// the failing byte offset.
StatusOr<std::vector<AggregatorSnapshot>> DecodeCheckpoint(const uint8_t* data,
                                                           size_t size);

/// Encodes a multi-collection (version 2) checkpoint image. Collection ids
/// must be non-empty, unique, and fit the u16 length prefix.
StatusOr<std::vector<uint8_t>> EncodeCollectorCheckpoint(
    const std::vector<CollectionCheckpoint>& collections);

/// Decodes and validates either container version: a version-1 image
/// yields one collection with an empty id; version 2 yields every
/// collection in file order.
StatusOr<std::vector<CollectionCheckpoint>> DecodeCollectorCheckpoint(
    const uint8_t* data, size_t size);

/// Encodes `collections` and atomically replaces `path` with the image.
Status WriteCollectorCheckpoint(
    const std::string& path,
    const std::vector<CollectionCheckpoint>& collections);

/// Reads and validates the checkpoint at `path` in either container
/// version (see DecodeCollectorCheckpoint). NotFound if the file does not
/// exist; InvalidArgument on any corruption.
StatusOr<std::vector<CollectionCheckpoint>> ReadCollectorCheckpoint(
    const std::string& path);

/// Encodes `snapshots` and atomically replaces `path` with the image
/// (write-rename via WriteBinaryFileAtomic), so a crash mid-checkpoint
/// leaves the previous checkpoint intact.
Status WriteCheckpoint(const std::string& path,
                       const std::vector<AggregatorSnapshot>& snapshots);

/// Reads and validates the checkpoint at `path`. NotFound if the file does
/// not exist; InvalidArgument on any corruption.
StatusOr<std::vector<AggregatorSnapshot>> ReadCheckpoint(
    const std::string& path);

// ---- Checkpoint generations --------------------------------------------
//
// With N generations configured, a checkpoint write first rotates the
// existing files (path.N-2 -> path.N-1, ..., path -> path.1, newest
// first) and then atomically installs the new image at `path` — so the
// last N successful checkpoints coexist on disk. Restore walks newest to
// oldest: a generation that fails validation (truncation, bit flips) is
// quarantined by renaming it to `<file>.corrupt` — out of the rotation,
// available for inspection — and the walk falls back to the next older
// generation. A crash between the rotation renames is safe: restore
// simply finds the previous newest at `path.1`.

/// The on-disk name of generation `generation` (0 = `path` itself, the
/// newest; k > 0 = `path.k`).
std::string CheckpointGenerationPath(const std::string& path, int generation);

/// Rotates existing generation files to make room for a new write of
/// `path` (see above). Missing generations are skipped; a rename failure
/// is an Internal error. A no-op when `generations` <= 1.
Status RotateCheckpointGenerations(const std::string& path, int generations);

/// How a fallback restore found its file (all fields valid on success).
struct CheckpointFallbackInfo {
  /// Generation index actually restored (0 = the newest).
  int generation = 0;
  /// File actually restored.
  std::string path;
  /// Corrupt generation files renamed to `*.corrupt` during the walk.
  std::vector<std::string> quarantined;
};

/// Reads the newest restorable generation of a multi-collection
/// checkpoint, quarantining corrupt generations along the way (see above).
/// NotFound when no generation file exists at all; otherwise the last
/// validation error when every existing generation is corrupt.
StatusOr<std::vector<CollectionCheckpoint>>
ReadCollectorCheckpointWithFallback(const std::string& path, int generations,
                                    CheckpointFallbackInfo* info = nullptr);

/// Single-collection (v1) variant of the fallback read, for
/// ShardedAggregator-level checkpoints.
StatusOr<std::vector<AggregatorSnapshot>> ReadCheckpointWithFallback(
    const std::string& path, int generations,
    CheckpointFallbackInfo* info = nullptr);

}  // namespace engine
}  // namespace ldpm

#endif  // LDPM_ENGINE_CHECKPOINT_H_
