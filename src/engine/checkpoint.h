// Durable checkpointing of aggregator state: a versioned binary container
// for std::vector<AggregatorSnapshot>, so a sharded engine can restart
// without replaying the wire stream (docs/wire-format.md specifies every
// byte).
//
// File layout (all integers little-endian, mirroring the u32
// length-prefix framing of protocols/wire.h):
//
//   header (20 bytes)
//     [0,8)    magic "LDPMCKPT"
//     [8,12)   u32 format version (currently 1)
//     [12,16)  u32 snapshot (record) count S
//     [16,20)  u32 CRC-32C over bytes [0,16)
//   record, S times
//     u32      payload length L
//     L bytes  snapshot payload (SerializeSnapshot encoding)
//     u32      CRC-32C over the L payload bytes
//
// The file ends exactly after the last record; trailing bytes are treated
// as corruption. Loading validates magic, header CRC, version (files with
// a newer version are rejected rather than misparsed — forward compat),
// record framing, and every record CRC, so truncation and bit flips
// anywhere in the file surface as a Status error instead of silently
// restoring biased state.
//
// The snapshot payload is protocol-agnostic (the flattened accumulator
// arrays of AggregatorSnapshot), so the container also checkpoints
// protocols without a wire format (InpOLH, InpHTCMS) through the engine's
// factory path.

#ifndef LDPM_ENGINE_CHECKPOINT_H_
#define LDPM_ENGINE_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "protocols/protocol.h"

namespace ldpm {
namespace engine {

/// Newest checkpoint file format version this build reads and writes.
inline constexpr uint32_t kCheckpointFormatVersion = 1;

/// The 8 magic bytes at offset 0 of every checkpoint file.
inline constexpr char kCheckpointMagic[8] = {'L', 'D', 'P', 'M',
                                             'C', 'K', 'P', 'T'};

/// Serializes one snapshot into a record payload (the bytes a checkpoint
/// record length-prefixes and checksums).
std::vector<uint8_t> SerializeSnapshot(const AggregatorSnapshot& snapshot);

/// Parses a record payload back into a snapshot; the inverse of
/// SerializeSnapshot. Rejects truncated or over-long payloads and
/// out-of-range enum encodings with a precise error.
StatusOr<AggregatorSnapshot> DeserializeSnapshot(const uint8_t* data,
                                                 size_t size);

/// Encodes a full checkpoint image (header + records + checksums).
/// InvalidArgument if the snapshot count or a record payload overflows
/// the u32 framing fields (nothing unrestorable is ever produced).
StatusOr<std::vector<uint8_t>> EncodeCheckpoint(
    const std::vector<AggregatorSnapshot>& snapshots);

/// Decodes and validates a checkpoint image; the inverse of
/// EncodeCheckpoint. Any framing, version, or checksum violation is an
/// InvalidArgument naming the failing byte offset.
StatusOr<std::vector<AggregatorSnapshot>> DecodeCheckpoint(const uint8_t* data,
                                                           size_t size);

/// Encodes `snapshots` and atomically replaces `path` with the image
/// (write-rename via WriteBinaryFileAtomic), so a crash mid-checkpoint
/// leaves the previous checkpoint intact.
Status WriteCheckpoint(const std::string& path,
                       const std::vector<AggregatorSnapshot>& snapshots);

/// Reads and validates the checkpoint at `path`. NotFound if the file does
/// not exist; InvalidArgument on any corruption.
StatusOr<std::vector<AggregatorSnapshot>> ReadCheckpoint(
    const std::string& path);

}  // namespace engine
}  // namespace ldpm

#endif  // LDPM_ENGINE_CHECKPOINT_H_
