#include "engine/collector.h"

#include <utility>

#include "core/file_io.h"
#include "engine/checkpoint.h"
#include "protocols/inp_es_adapter.h"
#include "protocols/wire.h"

namespace ldpm {
namespace engine {

namespace {

/// Derives a collection-specific engine seed from the collector-wide base
/// (FNV-1a over the id, xor-folded with the base). Two collections of the
/// same kind/config must NOT run bitwise-identical per-shard Rng streams:
/// correlated perturbation randomness across released marginal sets would
/// silently break the independence the privacy analysis assumes.
uint64_t PerCollectionSeed(uint64_t base, std::string_view id) {
  uint64_t hash = 14695981039346656037ull ^ base;
  for (char c : id) {
    hash ^= static_cast<uint8_t>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

}  // namespace

/// One registered protocol stream: identity plus the engine backing it.
/// Immutable after construction except through the engine's own
/// synchronized interface, so handles can share it lock-free.
struct CollectionHandle::Collection {
  std::string id;
  ProtocolKind kind;
  ProtocolConfig config;
  std::unique_ptr<ShardedAggregator> engine;
  /// Multiplexed-ingest counters for this collection, owned by the
  /// collector's registry (which outlives the collection).
  obs::Counter* frames_total = nullptr;
  obs::Counter* frame_bytes_total = nullptr;
};

// ---- CollectionHandle ------------------------------------------------------

const std::string& CollectionHandle::id() const { return collection_->id; }

ProtocolKind CollectionHandle::kind() const { return collection_->kind; }

const ProtocolConfig& CollectionHandle::config() const {
  return collection_->config;
}

Status CollectionHandle::Ingest(const Report& report) {
  return collection_->engine->Ingest(report);
}

Status CollectionHandle::IngestBatch(std::vector<Report> reports) {
  return collection_->engine->IngestBatch(std::move(reports));
}

Status CollectionHandle::IngestWireBatch(std::vector<uint8_t> frame) {
  return collection_->engine->IngestWireBatch(std::move(frame));
}

Status CollectionHandle::IngestRows(std::vector<uint64_t> rows,
                                    bool fast_path) {
  return collection_->engine->IngestRows(std::move(rows), fast_path);
}

Status CollectionHandle::IngestPopulation(const std::vector<uint64_t>& rows,
                                          bool fast_path) {
  return collection_->engine->IngestPopulation(rows, fast_path);
}

StatusOr<MarginalTable> CollectionHandle::Query(uint64_t beta) {
  return collection_->engine->EstimateMarginal(beta);
}

StatusOr<CategoricalMarginal> CollectionHandle::QueryCategorical(
    const std::vector<int>& attrs) {
  auto merged = collection_->engine->Merged();
  if (!merged.ok()) return merged.status();
  const auto* es = dynamic_cast<const InpEsMarginalProtocol*>(*merged);
  if (es == nullptr) {
    return Status::InvalidArgument(
        "collection \"" + collection_->id + "\" runs " +
        std::string((*merged)->name()) +
        "; categorical marginals need an InpES collection");
  }
  return es->EstimateCategorical(attrs);
}

Status CollectionHandle::Flush() { return collection_->engine->Flush(); }

StatusOr<IngestStats> CollectionHandle::Stats() {
  return collection_->engine->Stats();
}

StatusOr<uint64_t> CollectionHandle::ReportsAbsorbed() {
  return collection_->engine->ReportsAbsorbed();
}

ShardedAggregator& CollectionHandle::aggregator() {
  return *collection_->engine;
}

// ---- Collector -------------------------------------------------------------

Collector::Collector(const CollectorOptions& options) : options_(options) {
  if (options_.max_pending_batches_total > 0) {
    budget_ =
        std::make_shared<IngestBudget>(options_.max_pending_batches_total);
  }
  if (options_.metrics != nullptr) {
    metrics_ = options_.metrics;
  } else {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  collections_gauge_ = metrics_->GetGauge("ldpm_collector_collections",
                                          "Live registered collections");
  unknown_collection_total_ = metrics_->GetCounter(
      "ldpm_collector_unknown_collection_total",
      "Multiplexed frames rejected for naming no registered collection");
  ckpt_writes_total_ = metrics_->GetCounter(
      "ldpm_collector_checkpoint_writes_total",
      "Successful all-collection container checkpoint writes");
  ckpt_errors_total_ =
      metrics_->GetCounter("ldpm_collector_checkpoint_errors_total",
                           "Failed container checkpoint attempts");
  ckpt_bytes_total_ = metrics_->GetCounter(
      "ldpm_collector_checkpoint_bytes_total",
      "Encoded container checkpoint bytes successfully written");
  ckpt_quarantined_total_ = metrics_->GetCounter(
      "ldpm_collector_checkpoint_quarantined_total",
      "Corrupt checkpoint generation files quarantined as *.corrupt "
      "during restore");
  ckpt_duration_ = metrics_->GetHistogram(
      "ldpm_collector_checkpoint_duration_ns", obs::LatencyBuckets(),
      "Container checkpoint capture+encode+write duration");
  LDPM_CHECK(collections_gauge_ && unknown_collection_total_ &&
             ckpt_writes_total_ && ckpt_errors_total_ && ckpt_bytes_total_ &&
             ckpt_quarantined_total_ && ckpt_duration_);
}

StatusOr<std::unique_ptr<Collector>> Collector::Create(
    const CollectorOptions& options) {
  if (options.max_worker_threads < 0) {
    return Status::InvalidArgument(
        "Collector: max_worker_threads must be >= 0");
  }
  if (options.checkpoint_on_shutdown && options.checkpoint_path.empty()) {
    return Status::InvalidArgument(
        "Collector: checkpoint_on_shutdown requires a checkpoint_path");
  }
  return std::unique_ptr<Collector>(new Collector(options));
}

Collector::~Collector() {
  if (options_.checkpoint_on_shutdown) {
    // Flush BEFORE the snapshot cut — a bare CheckpointTo would silently
    // miss queued batches and coalescing-buffer tails — but best effort
    // on BOTH steps, not Drain(): a flush error must not skip the write
    // attempt. (A collection whose shards hold a sticky absorb error
    // still fails the attempt inside CheckpointTo — the container write
    // is all-or-nothing; see the ROADMAP limitation. Drain() reports the
    // Status; use it when the result matters.)
    (void)Flush();
    (void)CheckpointTo(options_.checkpoint_path);
  }
}

EngineOptions Collector::EffectiveOptions(const EngineOptions& base,
                                          bool strip_checkpointing) const {
  EngineOptions options = base;
  if (strip_checkpointing) {
    // The collector owns whole-container durability; per-collection
    // checkpoint files only make sense as explicit Register overrides.
    options.checkpoint_path.clear();
    options.checkpoint_every_batches = 0;
    options.checkpoint_on_shutdown = false;
  }
  options.shared_budget = budget_;
  // Engines publish into the collector's registry (labeled by collection
  // id in RegisterInternal) unless an override brought its own.
  if (options.metrics == nullptr) options.metrics = metrics_;
  return options;
}

StatusOr<CollectionHandle> Collector::Register(std::string id,
                                               ProtocolKind kind,
                                               const ProtocolConfig& config) {
  return RegisterInternal(std::move(id), kind, config,
                          EffectiveOptions(options_.engine_defaults,
                                           /*strip_checkpointing=*/true));
}

StatusOr<CollectionHandle> Collector::Register(std::string id,
                                               ProtocolKind kind,
                                               const ProtocolConfig& config,
                                               const EngineOptions& overrides) {
  return RegisterInternal(std::move(id), kind, config,
                          EffectiveOptions(overrides,
                                           /*strip_checkpointing=*/false));
}

StatusOr<CollectionHandle> Collector::RegisterInternal(
    std::string id, ProtocolKind kind, const ProtocolConfig& config,
    const EngineOptions& base_options) {
  // Decorrelate the per-shard Rng streams across collections on EVERY
  // registration path (see PerCollectionSeed): determinism per (seed, id)
  // is preserved, bitwise-shared randomness across collections is not.
  EngineOptions options = base_options;
  options.seed = PerCollectionSeed(options.seed, id);
  if (options.metrics_collection.empty()) options.metrics_collection = id;
  if (id.empty() || id.size() > kMaxCollectionIdBytes) {
    return Status::InvalidArgument(
        "Collector: collection id must be 1.." +
        std::to_string(kMaxCollectionIdBytes) + " bytes");
  }
  // The whole registration runs under the registry lock: the duplicate-id
  // and thread-budget checks must precede engine construction (a rejected
  // engine with checkpoint-on-shutdown overrides would otherwise clobber
  // the LIVE collection's checkpoint file when its destructor runs), and
  // nothing here calls back into the collector, so holding mu_ across the
  // (rare, registration-time-only) engine build cannot deadlock.
  core::MutexLock lock(mu_);
  if (collections_.count(id) != 0) {
    return Status::AlreadyExists("Collector: collection \"" + id +
                                 "\" is already registered");
  }
  if (options_.max_worker_threads > 0 &&
      threads_in_use_ + options.num_shards > options_.max_worker_threads) {
    return Status::ResourceExhausted(
        "Collector: registering \"" + id + "\" needs " +
        std::to_string(options.num_shards) + " worker threads but only " +
        std::to_string(options_.max_worker_threads - threads_in_use_) +
        " of " + std::to_string(options_.max_worker_threads) + " remain");
  }
  auto engine = ShardedAggregator::Create(kind, config, options);
  if (!engine.ok()) return engine.status();

  auto collection = std::make_shared<CollectionHandle::Collection>();
  collection->id = std::move(id);
  collection->kind = kind;
  collection->config = (*engine)->config();
  collection->engine = *std::move(engine);
  collection->frames_total = metrics_->GetCounter(
      obs::WithLabels("ldpm_collector_frames_routed_total",
                      {{"collection", collection->id}}),
      "Multiplexed collection frames routed to this collection");
  collection->frame_bytes_total = metrics_->GetCounter(
      obs::WithLabels("ldpm_collector_frame_bytes_total",
                      {{"collection", collection->id}}),
      "Whole-frame bytes (header + payload) routed to this collection");
  threads_in_use_ += options.num_shards;
  CollectionHandle handle(collection);
  collections_.emplace(collection->id, std::move(collection));
  collections_gauge_->Set(static_cast<int64_t>(collections_.size()));
  return handle;
}

Status Collector::Unregister(std::string_view id) {
  std::shared_ptr<CollectionHandle::Collection> released;
  int shards = 0;
  {
    core::MutexLock lock(mu_);
    auto it = collections_.find(id);
    if (it == collections_.end()) {
      return Status::NotFound("Collector: no collection \"" + std::string(id) +
                              "\"");
    }
    shards = it->second->engine->num_shards();
    released = std::move(it->second);
    collections_.erase(it);
    collections_gauge_->Set(static_cast<int64_t>(collections_.size()));
  }
  // The release happens OUTSIDE mu_. When this was the last reference,
  // the engine teardown drains its queues, joins every shard worker, and
  // may write a per-collection shutdown checkpoint — arbitrarily slow work
  // that must not stall concurrent Find/Query/Register on the registry
  // lock. The thread budget is returned only AFTER the drop, so a racing
  // Register cannot oversubscribe the cap while the old workers still
  // run. (With outstanding handles the drop is trivially cheap — and the
  // budget is returned while their engine lives on, as documented.)
  released.reset();
  {
    core::MutexLock lock(mu_);
    threads_in_use_ -= shards;
  }
  return Status::OK();
}

StatusOr<std::shared_ptr<CollectionHandle::Collection>> Collector::Find(
    std::string_view id) const {
  core::MutexLock lock(mu_);
  auto it = collections_.find(id);
  if (it == collections_.end()) {
    return Status::NotFound("Collector: no collection \"" + std::string(id) +
                            "\"");
  }
  return it->second;
}

StatusOr<CollectionHandle> Collector::Handle(std::string_view id) const {
  auto collection = Find(id);
  if (!collection.ok()) return collection.status();
  return CollectionHandle(*std::move(collection));
}

std::vector<std::string> Collector::CollectionIds() const {
  core::MutexLock lock(mu_);
  std::vector<std::string> ids;
  ids.reserve(collections_.size());
  for (const auto& [id, collection] : collections_) ids.push_back(id);
  return ids;
}

size_t Collector::collection_count() const {
  core::MutexLock lock(mu_);
  return collections_.size();
}

int Collector::worker_threads_in_use() const {
  core::MutexLock lock(mu_);
  return threads_in_use_;
}

Status Collector::IngestFrames(const uint8_t* data, size_t size,
                               IngestFramesResult* result) {
  IngestFramesResult scratch;
  if (result == nullptr) result = &scratch;
  *result = IngestFramesResult();
  CollectionFrameReader reader(data, size);
  std::string_view id;
  const uint8_t* payload = nullptr;
  size_t payload_size = 0;
  while (reader.Next(id, payload, payload_size)) {
    auto collection = Find(id);
    if (!collection.ok()) {
      unknown_collection_total_->Increment();
      return Status::InvalidArgument(
          "collection frame at byte " + std::to_string(reader.frame_offset()) +
          ": unknown collection id \"" + std::string(id) + "\"");
    }
    if (payload_size > 0) {
      LDPM_RETURN_IF_ERROR((*collection)->engine->IngestWireBatch(
          std::vector<uint8_t>(payload, payload + payload_size)));
      ++result->batches_enqueued;
    }
    // The frame counts as consumed only once it is fully routed: on any
    // error above, bytes_consumed still points at the frame that failed.
    result->bytes_consumed = reader.frame_end_offset();
    ++result->frames_routed;
    (*collection)->frames_total->Increment();
    (*collection)->frame_bytes_total->Increment(reader.frame_end_offset() -
                                                reader.frame_offset());
  }
  return reader.status();
}

Status Collector::IngestFrames(const std::vector<uint8_t>& stream,
                               IngestFramesResult* result) {
  return IngestFrames(stream.data(), stream.size(), result);
}

StatusOr<MarginalTable> Collector::Query(std::string_view collection,
                                         uint64_t beta) {
  auto handle = Handle(collection);
  if (!handle.ok()) return handle.status();
  return handle->Query(beta);
}

StatusOr<CategoricalMarginal> Collector::QueryCategorical(
    std::string_view collection, const std::vector<int>& attrs) {
  auto handle = Handle(collection);
  if (!handle.ok()) return handle.status();
  return handle->QueryCategorical(attrs);
}

Status Collector::Flush() {
  std::vector<std::shared_ptr<CollectionHandle::Collection>> live;
  {
    core::MutexLock lock(mu_);
    live.reserve(collections_.size());
    for (const auto& [id, collection] : collections_) live.push_back(collection);
  }
  Status first = Status::OK();
  for (const auto& collection : live) {
    Status status = collection->engine->Flush();
    if (!status.ok() && first.ok()) {
      first = Status(status.code(), "collection \"" + collection->id +
                                        "\": " + status.message());
    }
  }
  return first;
}

Status Collector::CheckpointTo(const std::string& path) {
  Status status = CheckpointToInternal(path);
  if (!status.ok()) ckpt_errors_total_->Increment();
  core::MutexLock lock(ckpt_mu_);
  // The sticky error tracks the *unresolved* failure: a later successful
  // write means the durable state is current again and clears it.
  ckpt_error_ = status;
  return status;
}

Status Collector::CheckpointToInternal(const std::string& path) {
  obs::ScopedTimer ckpt_timer(ckpt_duration_);
  // Snapshot under a registry copy: collections registered mid-call may or
  // may not be included, but every included collection's cut is exact.
  std::vector<std::shared_ptr<CollectionHandle::Collection>> live;
  {
    core::MutexLock lock(mu_);
    live.reserve(collections_.size());
    for (const auto& [id, collection] : collections_) live.push_back(collection);
  }
  std::vector<CollectionCheckpoint> checkpoint;
  checkpoint.reserve(live.size());
  for (const auto& collection : live) {
    auto snapshots = collection->engine->SnapshotShards();
    if (!snapshots.ok()) {
      return Status(snapshots.status().code(),
                    "collection \"" + collection->id +
                        "\": " + snapshots.status().message());
    }
    CollectionCheckpoint entry;
    entry.id = collection->id;
    entry.snapshots = *std::move(snapshots);
    checkpoint.push_back(std::move(entry));
  }
  // Encode and write as separate steps (rather than through
  // WriteCollectorCheckpoint) so the image size is observable.
  auto image = EncodeCollectorCheckpoint(checkpoint);
  if (!image.ok()) return image.status();
  LDPM_RETURN_IF_ERROR(
      RotateCheckpointGenerations(path, options_.checkpoint_generations));
  LDPM_RETURN_IF_ERROR(WriteBinaryFileAtomic(path, *image));
  ckpt_writes_total_->Increment();
  ckpt_bytes_total_->Increment(image->size());
  container_checkpoints_written_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

uint64_t Collector::checkpoints_written() const {
  uint64_t total =
      container_checkpoints_written_.load(std::memory_order_relaxed);
  core::MutexLock lock(mu_);
  for (const auto& [id, collection] : collections_) {
    total += collection->engine->checkpoints_written();
  }
  return total;
}

Status Collector::LastCheckpointError() const {
  {
    core::MutexLock lock(ckpt_mu_);
    if (!ckpt_error_.ok()) return ckpt_error_;
  }
  std::vector<std::shared_ptr<CollectionHandle::Collection>> live;
  {
    core::MutexLock lock(mu_);
    live.reserve(collections_.size());
    for (const auto& [id, collection] : collections_) live.push_back(collection);
  }
  for (const auto& collection : live) {
    Status status = collection->engine->LastCheckpointError();
    if (!status.ok()) {
      return Status(status.code(), "collection \"" + collection->id +
                                       "\": " + status.message());
    }
  }
  return Status::OK();
}

Status Collector::Checkpoint() {
  if (options_.checkpoint_path.empty()) {
    return Status::FailedPrecondition(
        "Collector: no checkpoint_path configured");
  }
  return CheckpointTo(options_.checkpoint_path);
}

Status Collector::RestoreFrom(const std::string& path) {
  // Newest-to-oldest generation walk: a corrupt newest file (torn write,
  // bit rot) is quarantined as *.corrupt and the restore falls back to
  // the previous generation instead of failing the restart.
  CheckpointFallbackInfo fallback;
  auto collections = ReadCollectorCheckpointWithFallback(
      path, options_.checkpoint_generations, &fallback);
  if (!fallback.quarantined.empty()) {
    ckpt_quarantined_total_->Increment(fallback.quarantined.size());
  }
  if (!collections.ok()) return collections.status();

  if (collections->size() == 1 && (*collections)[0].id.empty()) {
    // A v1 single-collection file: restore into the sole collection.
    std::shared_ptr<CollectionHandle::Collection> sole;
    {
      core::MutexLock lock(mu_);
      if (collections_.size() != 1) {
        return Status::InvalidArgument(
            path + ": a single-collection (v1) checkpoint restores only "
                   "into a collector with exactly one registered "
                   "collection, found " +
            std::to_string(collections_.size()));
      }
      sole = collections_.begin()->second;
    }
    Status status = sole->engine->RestoreShards((*collections)[0].snapshots);
    if (!status.ok()) {
      return Status(status.code(), "collection \"" + sole->id +
                                       "\": " + status.message());
    }
    return Status::OK();
  }

  // Resolve every id before restoring anything, so an unknown collection
  // fails the whole restore with no state touched.
  std::vector<std::shared_ptr<CollectionHandle::Collection>> targets;
  targets.reserve(collections->size());
  for (const CollectionCheckpoint& entry : *collections) {
    auto target = Find(entry.id);
    if (!target.ok()) {
      return Status::InvalidArgument(
          path + ": checkpoint names collection \"" + entry.id +
          "\", which is not registered");
    }
    targets.push_back(*std::move(target));
  }
  for (size_t i = 0; i < collections->size(); ++i) {
    Status status = targets[i]->engine->RestoreShards((*collections)[i].snapshots);
    if (!status.ok()) {
      return Status(status.code(), "collection \"" + targets[i]->id +
                                       "\": " + status.message());
    }
  }
  return Status::OK();
}

Status Collector::Drain() {
  LDPM_RETURN_IF_ERROR(Flush());
  if (options_.checkpoint_on_shutdown) {
    return CheckpointTo(options_.checkpoint_path);
  }
  return Status::OK();
}

}  // namespace engine
}  // namespace ldpm
