// The multi-collection collector facade: one engine, many protocol streams.
//
// A production collector rarely serves a single mechanism/config: different
// products report under different attribute sets, epsilons, and protocols,
// and one process must host them all. The Collector is that top-level API —
// a registry of named *collections*, each `collection id -> ProtocolKind +
// ProtocolConfig + EngineOptions`, backed by its own ShardedAggregator but
// sharing collector-wide resource bounds:
//
//   * a worker-thread budget: the sum of registered collections' shard
//     counts may be capped, so registering streams cannot oversubscribe the
//     box (CollectorOptions::max_worker_threads);
//   * a backpressure budget: one IngestBudget bounds in-flight work items
//     across ALL collections, so a burst on any subset of streams shares
//     one memory bound (CollectorOptions::max_pending_batches_total);
//   * durability: CheckpointTo/RestoreFrom persist and restore every
//     collection atomically in one version-2 container file
//     (engine/checkpoint.h); single-collection v1 files still restore.
//
// Ingest is either per-collection through a typed CollectionHandle
// (Ingest / IngestBatch / IngestWireBatch / rows) or multiplexed:
// IngestFrames routes a stream of self-describing collection frames
// (protocols/wire.h) to the right aggregators, so one socket or file can
// interleave every registered stream straight into the zero-copy wire
// path. Queries are answered per collection from its merged shard state.
//
// ShardedAggregator remains public as the advanced per-collection layer
// (CollectionHandle::aggregator() exposes it); new code should start here.

#ifndef LDPM_ENGINE_COLLECTOR_H_
#define LDPM_ENGINE_COLLECTOR_H_

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/encoding.h"
#include "engine/sharded_aggregator.h"
#include "obs/metrics.h"

namespace ldpm {
namespace engine {

/// Collector-wide configuration.
struct CollectorOptions {
  /// Per-collection engine defaults; Register overrides may replace them.
  /// The checkpoint fields of the defaults are ignored — durability of the
  /// whole collector is owned by the options below (explicit Register
  /// overrides may still configure per-collection checkpoint files).
  EngineOptions engine_defaults;
  /// Cap on the sum of shard worker threads across live collections;
  /// 0 = unbounded. Register fails with ResourceExhausted beyond it.
  int max_worker_threads = 0;
  /// Collector-wide bound on in-flight work items (batches) summed over
  /// all collections; 0 = unbounded. Enforced by a shared IngestBudget.
  size_t max_pending_batches_total = 0;
  /// Destination of Checkpoint() and the shutdown checkpoint: a version-2
  /// container holding every collection.
  std::string checkpoint_path;
  /// Write a final all-collection checkpoint in Drain() and (best-effort)
  /// the destructor. Requires a non-empty checkpoint_path.
  bool checkpoint_on_shutdown = false;
  /// Container checkpoint generations kept on disk: each write rotates
  /// checkpoint_path -> .1 -> .2 ... before atomically installing the new
  /// file, and RestoreFrom falls back newest-to-oldest past corrupt
  /// generations, quarantining them as *.corrupt
  /// (engine/checkpoint.h). 1 keeps only the newest file.
  int checkpoint_generations = 1;
  /// Metrics registry the collector and every collection engine publish
  /// into (must outlive the collector). Null makes the collector own a
  /// private registry, exposed via metrics() — so a StatsServer can serve
  /// it either way. Explicit Register overrides with their own non-null
  /// EngineOptions::metrics keep theirs.
  obs::MetricsRegistry* metrics = nullptr;
};

class Collector;

/// A value-typed reference to one registered collection. Handles stay
/// valid after Unregister (the backing engine lives until the last handle
/// drops); all operations are thread-safe and delegate to the collection's
/// ShardedAggregator. A default-constructed handle is invalid.
class CollectionHandle {
 public:
  CollectionHandle() = default;

  bool valid() const { return collection_ != nullptr; }
  const std::string& id() const;
  ProtocolKind kind() const;
  const ProtocolConfig& config() const;

  // Ingest — see the ShardedAggregator methods of the same names.
  Status Ingest(const Report& report);
  Status IngestBatch(std::vector<Report> reports);
  Status IngestWireBatch(std::vector<uint8_t> frame);
  Status IngestRows(std::vector<uint64_t> rows, bool fast_path = false);
  Status IngestPopulation(const std::vector<uint64_t>& rows,
                          bool fast_path = true);

  /// Flushes and estimates the marginal for selector beta from this
  /// collection's merged state.
  StatusOr<MarginalTable> Query(uint64_t beta);

  /// Categorical marginal over explicit attribute ids — InpES collections
  /// only (the protocol hosting non-binary domains).
  StatusOr<CategoricalMarginal> QueryCategorical(const std::vector<int>& attrs);

  Status Flush();
  StatusOr<IngestStats> Stats();
  StatusOr<uint64_t> ReportsAbsorbed();

  /// The advanced per-collection layer (snapshots, re-sharding, merged
  /// aggregator access). Valid for the handle's lifetime.
  ShardedAggregator& aggregator();

 private:
  friend class Collector;
  struct Collection;
  explicit CollectionHandle(std::shared_ptr<Collection> collection)
      : collection_(std::move(collection)) {}

  std::shared_ptr<Collection> collection_;
};

/// The multi-collection facade (see the file comment).
class Collector {
 public:
  static StatusOr<std::unique_ptr<Collector>> Create(
      const CollectorOptions& options = CollectorOptions());

  /// Drains every collection; with checkpoint_on_shutdown set, writes a
  /// best-effort final all-collection checkpoint first (use Drain() when
  /// the write's Status matters).
  ~Collector();

  Collector(const Collector&) = delete;
  Collector& operator=(const Collector&) = delete;

  // ---- Registry ----------------------------------------------------------

  /// Registers a new collection under `id` (non-empty, <= 65535 bytes,
  /// unique among live collections) running `kind` under `config` with the
  /// collector's engine defaults. Fails without side effects on a bad
  /// config or an exhausted worker-thread budget.
  StatusOr<CollectionHandle> Register(std::string id, ProtocolKind kind,
                                      const ProtocolConfig& config);

  /// Same, with explicit per-collection EngineOptions (shard count, batch
  /// sizes, per-collection checkpoint file, ...). The collector's shared
  /// backpressure budget is installed regardless, and the engine seed is
  /// still decorrelated per collection (a deterministic function of
  /// overrides.seed and the id), so same-config collections never share
  /// bitwise-identical perturbation randomness.
  StatusOr<CollectionHandle> Register(std::string id, ProtocolKind kind,
                                      const ProtocolConfig& config,
                                      const EngineOptions& overrides);

  /// Removes a collection and returns its worker threads to the budget.
  /// Outstanding handles keep the backing engine alive and usable; the
  /// collector just stops routing/checkpointing it.
  Status Unregister(std::string_view id);

  /// Looks up a live collection.
  StatusOr<CollectionHandle> Handle(std::string_view id) const;

  /// Ids of all live collections, ascending.
  std::vector<std::string> CollectionIds() const;

  size_t collection_count() const;

  /// Shard worker threads currently drawn from the budget.
  int worker_threads_in_use() const;

  /// The collector-wide backpressure budget, or null when unbounded
  /// (max_pending_batches_total == 0). External producers — the network
  /// ingest front-end above all — probe it with TryAcquire/AcquireFor to
  /// shed load or stay shutdown-responsive while the collector is
  /// saturated, instead of committing bytes that would block inside the
  /// engines' own (indefinitely blocking) slot acquisition.
  const std::shared_ptr<IngestBudget>& shared_budget() const {
    return budget_;
  }

  /// The registry all collector/engine metrics land in: the configured
  /// CollectorOptions::metrics, or the collector-owned private registry
  /// when none was configured. Never null; valid for the collector's
  /// lifetime. Wire a net::StatsServer to this to expose /stats.
  obs::MetricsRegistry* metrics() const { return metrics_; }

  /// Checkpoints written since construction: successful CheckpointTo /
  /// Checkpoint / Drain / shutdown container writes, plus the background
  /// checkpoints of every live collection engine (per-collection cadence
  /// overrides). Unregistered collections' counts drop out.
  uint64_t checkpoints_written() const;

  /// Most recent unresolved checkpoint error: a collector-level container
  /// write failure stays sticky until the next successful container write
  /// clears it; after that, the first live engine's unresolved
  /// background-checkpointer error (same clear-on-success rule) is
  /// reported. OK when the durable state is current.
  Status LastCheckpointError() const;

  // ---- Multiplexed ingest ------------------------------------------------

  /// What IngestFrames did with a (possibly partially consumed) stream.
  /// On error the counters make the partial-stream semantics explicit: the
  /// first bytes_consumed bytes are fully routed and stay ingested, and
  /// data + bytes_consumed is the exact resync point — the start of the
  /// frame the error names. A network front-end uses this to keep the
  /// unconsumed tail of its receive buffer, or to reject a connection with
  /// a byte-precise error.
  struct IngestFramesResult {
    /// Bytes of whole, successfully routed frames at the front of the
    /// stream (== the stream size when the call succeeded).
    size_t bytes_consumed = 0;
    /// Whole frames routed, including frames with an empty payload.
    uint64_t frames_routed = 0;
    /// Wire batches actually handed to an engine (empty-payload frames
    /// route without enqueueing work).
    uint64_t batches_enqueued = 0;
  };

  /// Routes a stream of collection frames (protocols/wire.h) to the named
  /// collections' wire-batch fast paths. Any framing violation or unknown
  /// collection id stops ingestion at that frame with an InvalidArgument
  /// naming the exact byte offset; frames before it stay ingested, and
  /// `result` (optional) reports exactly how much was consumed.
  /// (A payload mismatching its collection's protocol surfaces at the
  /// next Flush/Query, like any asynchronous absorb error.)
  Status IngestFrames(const uint8_t* data, size_t size,
                      IngestFramesResult* result = nullptr);
  Status IngestFrames(const std::vector<uint8_t>& stream,
                      IngestFramesResult* result = nullptr);

  // ---- Query -------------------------------------------------------------

  /// Flushes `collection` and estimates the marginal for selector beta
  /// from its merged state.
  StatusOr<MarginalTable> Query(std::string_view collection, uint64_t beta);

  /// Categorical marginal from an InpES collection (see
  /// CollectionHandle::QueryCategorical).
  StatusOr<CategoricalMarginal> QueryCategorical(std::string_view collection,
                                                 const std::vector<int>& attrs);

  /// Flushes every collection; first error wins, all are flushed.
  Status Flush();

  // ---- Durability --------------------------------------------------------

  /// Flushes every collection and atomically writes one version-2
  /// container holding all of them (ascending id order). Each collection's
  /// snapshot set is an exact cut of everything its handle ingested before
  /// this call.
  Status CheckpointTo(const std::string& path);

  /// CheckpointTo(options.checkpoint_path).
  Status Checkpoint();

  /// Restores collections from a checkpoint file. A version-2 container
  /// restores every collection it names into the registered collection of
  /// the same id (every named id must be registered with a matching
  /// protocol/config; registered collections absent from the file keep
  /// their state). A version-1 (single-collection) file restores into the
  /// sole registered collection, whatever its id. Collections are restored
  /// one at a time; each is atomic, and a failure part-way leaves earlier
  /// ones restored (the returned Status names the failing collection).
  Status RestoreFrom(const std::string& path);

  /// Flushes every collection, then writes the shutdown checkpoint when
  /// checkpoint_on_shutdown is set. The collector stays usable afterwards.
  Status Drain();

 private:
  explicit Collector(const CollectorOptions& options);

  /// Effective per-collection engine options: install the shared budget
  /// and (for defaults) strip collector-owned checkpoint fields.
  EngineOptions EffectiveOptions(const EngineOptions& base,
                                 bool strip_checkpointing) const;

  StatusOr<CollectionHandle> RegisterInternal(std::string id,
                                              ProtocolKind kind,
                                              const ProtocolConfig& config,
                                              const EngineOptions& base_options);

  StatusOr<std::shared_ptr<CollectionHandle::Collection>> Find(
      std::string_view id) const;

  /// CheckpointTo minus the error bookkeeping (the public wrapper records
  /// the sticky error and the failure counter).
  Status CheckpointToInternal(const std::string& path);

  CollectorOptions options_;
  std::shared_ptr<IngestBudget> budget_;  // null when unbounded

  /// See metrics(): points at options_.metrics or owned_metrics_.
  obs::MetricsRegistry* metrics_ = nullptr;
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::Gauge* collections_gauge_ = nullptr;
  obs::Counter* unknown_collection_total_ = nullptr;
  obs::Counter* ckpt_writes_total_ = nullptr;
  obs::Counter* ckpt_errors_total_ = nullptr;
  obs::Counter* ckpt_bytes_total_ = nullptr;
  obs::Counter* ckpt_quarantined_total_ = nullptr;
  obs::Histogram* ckpt_duration_ = nullptr;

  mutable core::Mutex mu_;  // guards collections_ and threads_in_use_
  std::map<std::string, std::shared_ptr<CollectionHandle::Collection>,
           std::less<>>
      collections_ LDPM_GUARDED_BY(mu_);
  int threads_in_use_ LDPM_GUARDED_BY(mu_) = 0;

  /// Collector-level checkpoint outcomes (see checkpoints_written /
  /// LastCheckpointError); engines keep their own.
  mutable core::Mutex ckpt_mu_;
  Status ckpt_error_ LDPM_GUARDED_BY(ckpt_mu_);
  std::atomic<uint64_t> container_checkpoints_written_{0};
};

}  // namespace engine
}  // namespace ldpm

#endif  // LDPM_ENGINE_COLLECTOR_H_
