#include "engine/checkpoint.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <filesystem>
#include <functional>

#include "core/crc32c.h"
#include "core/encoding.h"
#include "core/file_io.h"

namespace ldpm {
namespace engine {

namespace {

// ---- Little-endian primitives ---------------------------------------------

void PutU16(std::vector<uint8_t>& out, uint16_t v) {
  out.push_back(static_cast<uint8_t>(v));
  out.push_back(static_cast<uint8_t>(v >> 8));
}

void PutU32(std::vector<uint8_t>& out, uint32_t v) {
  out.push_back(static_cast<uint8_t>(v));
  out.push_back(static_cast<uint8_t>(v >> 8));
  out.push_back(static_cast<uint8_t>(v >> 16));
  out.push_back(static_cast<uint8_t>(v >> 24));
}

void PutU64(std::vector<uint8_t>& out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v));
  PutU32(out, static_cast<uint32_t>(v >> 32));
}

void PutDouble(std::vector<uint8_t>& out, double v) {
  PutU64(out, std::bit_cast<uint64_t>(v));
}

/// The container decoders read exclusively through the bounded ByteCursor
/// (core/encoding.h) with context "checkpoint": every length prefix is
/// bounds-checked before use and no offset arithmetic can wrap.
ByteCursor CheckpointCursor(const uint8_t* data, size_t size) {
  return ByteCursor(data, size, "checkpoint");
}

// Snapshot payload field sizes past the name: d, k (u32 each), epsilon
// (u64), four u8 flags, reports_absorbed + total_report_bits (u64 each),
// and the two array length prefixes (u64 each).
constexpr size_t kFixedSnapshotBytes = 4 + 4 + 8 + 4 + 8 + 8 + 8 + 8;

/// Exact encoded size of one snapshot payload; lets EncodeCheckpoint
/// reserve the whole image and serialize each record in place instead of
/// staging per-record vectors (checkpoints can be large for InpRR).
size_t SnapshotPayloadSize(const AggregatorSnapshot& snapshot) {
  return 4 + snapshot.protocol.size() + kFixedSnapshotBytes +
         8 * (snapshot.reals.size() + snapshot.counts.size());
}

void AppendSnapshotPayload(std::vector<uint8_t>& out,
                           const AggregatorSnapshot& snapshot) {
  PutU32(out, static_cast<uint32_t>(snapshot.protocol.size()));
  for (char c : snapshot.protocol) out.push_back(static_cast<uint8_t>(c));
  PutU32(out, static_cast<uint32_t>(snapshot.d));
  PutU32(out, static_cast<uint32_t>(snapshot.k));
  PutDouble(out, snapshot.epsilon);
  out.push_back(static_cast<uint8_t>(snapshot.estimator));
  out.push_back(static_cast<uint8_t>(snapshot.unary_variant));
  out.push_back(snapshot.sample_zero_coefficient ? 1 : 0);
  out.push_back(0);  // reserved, must be zero
  PutU64(out, snapshot.reports_absorbed);
  PutDouble(out, snapshot.total_report_bits);
  PutU64(out, snapshot.reals.size());
  for (double v : snapshot.reals) PutDouble(out, v);
  PutU64(out, snapshot.counts.size());
  for (uint64_t v : snapshot.counts) PutU64(out, v);
}

}  // namespace

std::vector<uint8_t> SerializeSnapshot(const AggregatorSnapshot& snapshot) {
  std::vector<uint8_t> out;
  out.reserve(SnapshotPayloadSize(snapshot));
  AppendSnapshotPayload(out, snapshot);
  return out;
}

StatusOr<AggregatorSnapshot> DeserializeSnapshot(const uint8_t* data,
                                                 size_t size) {
  ByteCursor reader = CheckpointCursor(data, size);
  AggregatorSnapshot snapshot;

  uint32_t name_len = 0;
  LDPM_RETURN_IF_ERROR(reader.ReadU32(name_len, "protocol name length"));
  const uint8_t* name = nullptr;
  LDPM_RETURN_IF_ERROR(reader.ReadBytes(name, name_len, "protocol name"));
  snapshot.protocol.assign(reinterpret_cast<const char*>(name), name_len);

  uint32_t d = 0, k = 0;
  LDPM_RETURN_IF_ERROR(reader.ReadU32(d, "d"));
  LDPM_RETURN_IF_ERROR(reader.ReadU32(k, "k"));
  snapshot.d = static_cast<int>(d);
  snapshot.k = static_cast<int>(k);
  LDPM_RETURN_IF_ERROR(reader.ReadDouble(snapshot.epsilon, "epsilon"));

  uint8_t estimator = 0, variant = 0, sample_zero = 0, reserved = 0;
  LDPM_RETURN_IF_ERROR(reader.ReadU8(estimator, "estimator"));
  LDPM_RETURN_IF_ERROR(reader.ReadU8(variant, "unary variant"));
  LDPM_RETURN_IF_ERROR(reader.ReadU8(sample_zero, "zero-coefficient flag"));
  LDPM_RETURN_IF_ERROR(reader.ReadU8(reserved, "reserved flag"));
  if (estimator > static_cast<uint8_t>(EstimatorKind::kHorvitzThompson) ||
      variant > static_cast<uint8_t>(UnaryVariant::kOptimized) ||
      sample_zero > 1 || reserved != 0) {
    return Status::InvalidArgument(
        "checkpoint: snapshot flags out of range (estimator=" +
        std::to_string(estimator) + ", variant=" + std::to_string(variant) +
        ", sample_zero=" + std::to_string(sample_zero) +
        ", reserved=" + std::to_string(reserved) + ")");
  }
  snapshot.estimator = static_cast<EstimatorKind>(estimator);
  snapshot.unary_variant = static_cast<UnaryVariant>(variant);
  snapshot.sample_zero_coefficient = sample_zero != 0;

  LDPM_RETURN_IF_ERROR(
      reader.ReadU64(snapshot.reports_absorbed, "reports_absorbed"));
  LDPM_RETURN_IF_ERROR(
      reader.ReadDouble(snapshot.total_report_bits, "total_report_bits"));

  uint64_t reals_count = 0;
  LDPM_RETURN_IF_ERROR(reader.ReadU64(reals_count, "reals length"));
  uint64_t reals_bytes = 0;
  if (!CheckedMul(reals_count, 8, &reals_bytes) ||
      !reader.CanRead(reals_bytes)) {
    return Status::InvalidArgument(
        "checkpoint: reals length " + std::to_string(reals_count) +
        " exceeds the remaining payload at byte " +
        std::to_string(reader.offset()));
  }
  snapshot.reals.resize(static_cast<size_t>(reals_count));
  for (double& v : snapshot.reals) {
    LDPM_RETURN_IF_ERROR(reader.ReadDouble(v, "reals entry"));
  }

  uint64_t counts_count = 0;
  LDPM_RETURN_IF_ERROR(reader.ReadU64(counts_count, "counts length"));
  uint64_t counts_bytes = 0;
  if (!CheckedMul(counts_count, 8, &counts_bytes) ||
      !reader.CanRead(counts_bytes)) {
    return Status::InvalidArgument(
        "checkpoint: counts length " + std::to_string(counts_count) +
        " exceeds the remaining payload at byte " +
        std::to_string(reader.offset()));
  }
  snapshot.counts.resize(static_cast<size_t>(counts_count));
  for (uint64_t& v : snapshot.counts) {
    LDPM_RETURN_IF_ERROR(reader.ReadU64(v, "counts entry"));
  }

  LDPM_RETURN_IF_ERROR(reader.ExpectEnd("snapshot payload"));
  return snapshot;
}

StatusOr<std::vector<uint8_t>> EncodeCheckpoint(
    const std::vector<AggregatorSnapshot>& snapshots) {
  constexpr uint64_t kMaxU32 = 0xFFFFFFFFull;
  if (snapshots.size() > kMaxU32) {
    return Status::InvalidArgument(
        "checkpoint: snapshot count overflows the u32 header field");
  }
  size_t total = 20;  // header
  for (const AggregatorSnapshot& snapshot : snapshots) {
    const size_t payload_size = SnapshotPayloadSize(snapshot);
    // A length prefix that wrapped mod 2^32 would make CheckpointTo
    // report success for a file no restore could ever parse.
    if (payload_size > kMaxU32) {
      return Status::InvalidArgument(
          "checkpoint: snapshot payload for " + snapshot.protocol + " is " +
          std::to_string(payload_size) +
          " bytes, which overflows the u32 record length");
    }
    total += 8 + payload_size;  // length prefix + payload + CRC
  }
  // One exact reservation; records serialize in place (no per-record
  // staging buffers — checkpoint images can be large for InpRR).
  std::vector<uint8_t> out;
  out.reserve(total);
  for (char c : kCheckpointMagic) out.push_back(static_cast<uint8_t>(c));
  PutU32(out, kCheckpointFormatVersionV1);
  PutU32(out, static_cast<uint32_t>(snapshots.size()));
  PutU32(out, Crc32c(out.data(), out.size()));
  for (const AggregatorSnapshot& snapshot : snapshots) {
    const size_t payload_size = SnapshotPayloadSize(snapshot);
    PutU32(out, static_cast<uint32_t>(payload_size));
    const size_t payload_start = out.size();
    AppendSnapshotPayload(out, snapshot);
    LDPM_DCHECK(out.size() - payload_start == payload_size);
    PutU32(out, Crc32c(out.data() + payload_start, payload_size));
  }
  LDPM_DCHECK(out.size() == total);
  return out;
}

namespace {

/// Reads `count` snapshot records (u32 length + payload + u32 CRC each)
/// through `reader`; shared by both container versions. `file_size` bounds
/// the reserve so a CRC-valid header cannot force a huge allocation.
Status ReadSnapshotRecords(ByteCursor& reader, uint32_t count,
                           size_t file_size,
                           std::vector<AggregatorSnapshot>& out) {
  // Every record costs at least 8 framing bytes, so a CRC-valid header
  // cannot make us reserve more than the file could hold.
  out.reserve(std::min<size_t>(count, file_size / 8));
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t payload_len = 0;
    const size_t record_start = reader.offset();
    LDPM_RETURN_IF_ERROR(reader.ReadU32(payload_len, "record length"));
    const uint8_t* payload = nullptr;
    LDPM_RETURN_IF_ERROR(
        reader.ReadBytes(payload, payload_len, "record payload"));
    uint32_t payload_crc = 0;
    LDPM_RETURN_IF_ERROR(reader.ReadU32(payload_crc, "record checksum"));
    if (Crc32c(payload, payload_len) != payload_crc) {
      return Status::InvalidArgument(
          "checkpoint: record " + std::to_string(i) +
          " checksum mismatch at byte " + std::to_string(record_start));
    }
    auto snapshot = DeserializeSnapshot(payload, payload_len);
    if (!snapshot.ok()) {
      return Status::InvalidArgument(
          "checkpoint: record " + std::to_string(i) + " at byte " +
          std::to_string(record_start) + ": " + snapshot.status().message());
    }
    out.push_back(*std::move(snapshot));
  }
  return Status::OK();
}

}  // namespace

StatusOr<std::vector<CollectionCheckpoint>> DecodeCollectorCheckpoint(
    const uint8_t* data, size_t size) {
  ByteCursor reader = CheckpointCursor(data, size);
  const uint8_t* magic = nullptr;
  LDPM_RETURN_IF_ERROR(reader.ReadBytes(magic, 8, "magic"));
  if (std::memcmp(magic, kCheckpointMagic, 8) != 0) {
    return Status::InvalidArgument(
        "checkpoint: bad magic (not a checkpoint file)");
  }
  uint32_t version = 0, count = 0, header_crc = 0;
  LDPM_RETURN_IF_ERROR(reader.ReadU32(version, "format version"));
  LDPM_RETURN_IF_ERROR(reader.ReadU32(count, "record count"));
  LDPM_RETURN_IF_ERROR(reader.ReadU32(header_crc, "header checksum"));
  // CRC before the version gate: a bit flip inside the version field is
  // corruption (checksum mismatch), while a clean header with a larger
  // version is a genuinely newer file this build must refuse to misparse.
  if (Crc32c(data, 16) != header_crc) {
    return Status::InvalidArgument("checkpoint: header checksum mismatch");
  }
  if (version == 0 || version > kCheckpointFormatVersion) {
    return Status::InvalidArgument(
        "checkpoint: unsupported format version " + std::to_string(version) +
        " (this build reads up to " +
        std::to_string(kCheckpointFormatVersion) + ")");
  }

  std::vector<CollectionCheckpoint> collections;
  if (version == kCheckpointFormatVersionV1) {
    // A v1 file is one anonymous collection's snapshot list.
    CollectionCheckpoint collection;
    LDPM_RETURN_IF_ERROR(
        ReadSnapshotRecords(reader, count, size, collection.snapshots));
    collections.push_back(std::move(collection));
  } else {
    collections.reserve(std::min<size_t>(count, size / 8));
    for (uint32_t c = 0; c < count; ++c) {
      const size_t block_start = reader.offset();
      uint16_t id_len = 0;
      LDPM_RETURN_IF_ERROR(reader.ReadU16(id_len, "collection id length"));
      if (id_len == 0) {
        return Status::InvalidArgument(
            "checkpoint: empty collection id at byte " +
            std::to_string(block_start));
      }
      const uint8_t* id = nullptr;
      LDPM_RETURN_IF_ERROR(reader.ReadBytes(id, id_len, "collection id"));
      uint32_t snapshot_count = 0, block_crc = 0;
      LDPM_RETURN_IF_ERROR(reader.ReadU32(snapshot_count, "snapshot count"));
      const size_t block_header_size = reader.offset() - block_start;
      LDPM_RETURN_IF_ERROR(reader.ReadU32(block_crc, "collection checksum"));
      if (Crc32c(data + block_start, block_header_size) != block_crc) {
        return Status::InvalidArgument(
            "checkpoint: collection " + std::to_string(c) +
            " header checksum mismatch at byte " +
            std::to_string(block_start));
      }
      CollectionCheckpoint collection;
      collection.id.assign(reinterpret_cast<const char*>(id), id_len);
      for (const CollectionCheckpoint& seen : collections) {
        if (seen.id == collection.id) {
          return Status::InvalidArgument(
              "checkpoint: duplicate collection id \"" + collection.id +
              "\" at byte " + std::to_string(block_start));
        }
      }
      LDPM_RETURN_IF_ERROR(ReadSnapshotRecords(reader, snapshot_count, size,
                                               collection.snapshots));
      collections.push_back(std::move(collection));
    }
  }
  LDPM_RETURN_IF_ERROR(reader.ExpectEnd("the last record"));
  return collections;
}

StatusOr<std::vector<AggregatorSnapshot>> DecodeCheckpoint(const uint8_t* data,
                                                           size_t size) {
  auto collections = DecodeCollectorCheckpoint(data, size);
  if (!collections.ok()) return collections.status();
  if (collections->size() != 1) {
    return Status::InvalidArgument(
        "checkpoint: image holds " + std::to_string(collections->size()) +
        " collections; restore it through Collector::RestoreFrom");
  }
  return std::move((*collections)[0].snapshots);
}

StatusOr<std::vector<uint8_t>> EncodeCollectorCheckpoint(
    const std::vector<CollectionCheckpoint>& collections) {
  constexpr uint64_t kMaxU32 = 0xFFFFFFFFull;
  if (collections.size() > kMaxU32) {
    return Status::InvalidArgument(
        "checkpoint: collection count overflows the u32 header field");
  }
  size_t total = 20;  // header
  for (size_t c = 0; c < collections.size(); ++c) {
    const CollectionCheckpoint& collection = collections[c];
    if (collection.id.empty()) {
      return Status::InvalidArgument("checkpoint: empty collection id");
    }
    if (collection.id.size() > 0xFFFF) {
      return Status::InvalidArgument(
          "checkpoint: collection id \"" + collection.id.substr(0, 32) +
          "...\" overflows the u16 length prefix");
    }
    for (size_t prior = 0; prior < c; ++prior) {
      if (collections[prior].id == collection.id) {
        return Status::InvalidArgument(
            "checkpoint: duplicate collection id \"" + collection.id + "\"");
      }
    }
    if (collection.snapshots.size() > kMaxU32) {
      return Status::InvalidArgument(
          "checkpoint: snapshot count overflows the u32 framing field");
    }
    total += 2 + collection.id.size() + 4 + 4;  // block header + CRC
    for (const AggregatorSnapshot& snapshot : collection.snapshots) {
      const size_t payload_size = SnapshotPayloadSize(snapshot);
      if (payload_size > kMaxU32) {
        return Status::InvalidArgument(
            "checkpoint: snapshot payload for " + snapshot.protocol +
            " is " + std::to_string(payload_size) +
            " bytes, which overflows the u32 record length");
      }
      total += 8 + payload_size;
    }
  }
  std::vector<uint8_t> out;
  out.reserve(total);
  for (char ch : kCheckpointMagic) out.push_back(static_cast<uint8_t>(ch));
  PutU32(out, kCheckpointFormatVersion);
  PutU32(out, static_cast<uint32_t>(collections.size()));
  PutU32(out, Crc32c(out.data(), out.size()));
  for (const CollectionCheckpoint& collection : collections) {
    const size_t block_start = out.size();
    PutU16(out, static_cast<uint16_t>(collection.id.size()));
    for (char ch : collection.id) out.push_back(static_cast<uint8_t>(ch));
    PutU32(out, static_cast<uint32_t>(collection.snapshots.size()));
    PutU32(out, Crc32c(out.data() + block_start, out.size() - block_start));
    for (const AggregatorSnapshot& snapshot : collection.snapshots) {
      const size_t payload_size = SnapshotPayloadSize(snapshot);
      PutU32(out, static_cast<uint32_t>(payload_size));
      const size_t payload_start = out.size();
      AppendSnapshotPayload(out, snapshot);
      LDPM_DCHECK(out.size() - payload_start == payload_size);
      PutU32(out, Crc32c(out.data() + payload_start, payload_size));
    }
  }
  LDPM_DCHECK(out.size() == total);
  return out;
}

Status WriteCollectorCheckpoint(
    const std::string& path,
    const std::vector<CollectionCheckpoint>& collections) {
  auto image = EncodeCollectorCheckpoint(collections);
  if (!image.ok()) return image.status();
  return WriteBinaryFileAtomic(path, *image);
}

StatusOr<std::vector<CollectionCheckpoint>> ReadCollectorCheckpoint(
    const std::string& path) {
  auto bytes = ReadBinaryFile(path);
  if (!bytes.ok()) return bytes.status();
  auto collections = DecodeCollectorCheckpoint(bytes->data(), bytes->size());
  if (!collections.ok()) {
    return Status(collections.status().code(),
                  path + ": " + collections.status().message());
  }
  return collections;
}

Status WriteCheckpoint(const std::string& path,
                       const std::vector<AggregatorSnapshot>& snapshots) {
  auto image = EncodeCheckpoint(snapshots);
  if (!image.ok()) return image.status();
  return WriteBinaryFileAtomic(path, *image);
}

StatusOr<std::vector<AggregatorSnapshot>> ReadCheckpoint(
    const std::string& path) {
  auto bytes = ReadBinaryFile(path);
  if (!bytes.ok()) return bytes.status();
  auto snapshots = DecodeCheckpoint(bytes->data(), bytes->size());
  if (!snapshots.ok()) {
    return Status(snapshots.status().code(),
                  path + ": " + snapshots.status().message());
  }
  return snapshots;
}

std::string CheckpointGenerationPath(const std::string& path,
                                     int generation) {
  if (generation <= 0) return path;
  return path + "." + std::to_string(generation);
}

Status RotateCheckpointGenerations(const std::string& path, int generations) {
  if (generations <= 1) return Status::OK();
  namespace fs = std::filesystem;
  // Oldest slot first, so every rename moves into a slot that was just
  // vacated (or is the about-to-expire oldest, which it overwrites). A
  // crash anywhere in the sequence leaves every generation present under
  // some name the fallback walk visits.
  for (int generation = generations - 2; generation >= 0; --generation) {
    const std::string from = CheckpointGenerationPath(path, generation);
    const std::string to = CheckpointGenerationPath(path, generation + 1);
    std::error_code ec;
    if (!fs::exists(from, ec)) continue;
    fs::rename(from, to, ec);
    if (ec) {
      return Status::Internal("rotating checkpoint generation " + from +
                              " -> " + to + " failed: " + ec.message());
    }
  }
  return Status::OK();
}

namespace {

/// Shared generation walk: `read` loads-and-validates one file. Corrupt
/// files are quarantined; the newest clean one wins.
template <typename T>
StatusOr<T> ReadWithFallbackImpl(
    const std::string& path, int generations, CheckpointFallbackInfo* info,
    const std::function<StatusOr<T>(const std::string&)>& read) {
  namespace fs = std::filesystem;
  bool any_file = false;
  Status last_error;
  for (int generation = 0; generation < std::max(1, generations);
       ++generation) {
    const std::string generation_path =
        CheckpointGenerationPath(path, generation);
    auto result = read(generation_path);
    if (result.ok()) {
      if (info != nullptr) {
        info->generation = generation;
        info->path = generation_path;
      }
      return result;
    }
    if (result.status().code() == StatusCode::kNotFound) continue;
    // The file exists but does not validate: pull it out of the rotation
    // so a later checkpoint write cannot age it back into the restore
    // path, and keep it on disk for inspection.
    any_file = true;
    last_error = result.status();
    std::error_code ec;
    fs::rename(generation_path, generation_path + ".corrupt", ec);
    if (!ec && info != nullptr) {
      info->quarantined.push_back(generation_path + ".corrupt");
    }
  }
  if (!any_file) {
    return Status::NotFound("no checkpoint generation found at " + path);
  }
  return Status(last_error.code(),
                "no restorable checkpoint generation at " + path + ": " +
                    last_error.message());
}

}  // namespace

StatusOr<std::vector<CollectionCheckpoint>>
ReadCollectorCheckpointWithFallback(const std::string& path, int generations,
                                    CheckpointFallbackInfo* info) {
  return ReadWithFallbackImpl<std::vector<CollectionCheckpoint>>(
      path, generations, info,
      [](const std::string& p) { return ReadCollectorCheckpoint(p); });
}

StatusOr<std::vector<AggregatorSnapshot>> ReadCheckpointWithFallback(
    const std::string& path, int generations, CheckpointFallbackInfo* info) {
  return ReadWithFallbackImpl<std::vector<AggregatorSnapshot>>(
      path, generations, info,
      [](const std::string& p) { return ReadCheckpoint(p); });
}

}  // namespace engine
}  // namespace ldpm
