// Bounded multi-producer single-consumer work queue feeding one shard
// worker of the sharded aggregation engine.
//
// Producers push batches of work and block when the queue is full
// (backpressure instead of unbounded memory growth under overload). The
// single consumer — the shard's worker thread — pops batches and marks each
// one done, which lets Flush() implement a precise drain barrier: the queue
// is drained only when no batch is queued AND the worker is not mid-batch.

#ifndef LDPM_ENGINE_SHARD_QUEUE_H_
#define LDPM_ENGINE_SHARD_QUEUE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

#include "protocols/protocol.h"

namespace ldpm {
namespace engine {

/// One unit of shard work: either pre-encoded reports to absorb, or raw
/// user rows to encode on the worker with the shard's own Rng stream.
struct WorkItem {
  /// Reports to Absorb() verbatim (aggregator-side ingest).
  std::vector<Report> reports;
  /// User rows to encode and absorb on the worker (client simulation).
  std::vector<uint64_t> rows;
  /// For `rows`: use the protocol's distribution-exact AbsorbPopulation
  /// fast path instead of the per-user Encode+Absorb loop.
  bool fast_path = false;
};

class ShardQueue {
 public:
  explicit ShardQueue(size_t max_pending) : max_pending_(max_pending) {}

  /// Enqueues one work item; blocks while the queue is at capacity.
  /// Returns false (dropping the item) if the queue has been closed.
  bool Push(WorkItem item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [&] { return closed_ || items_.size() < max_pending_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Dequeues the next item; blocks while the queue is empty. Returns false
  /// once the queue is closed and fully drained. The consumer must call
  /// Done() after finishing each popped item.
  bool Pop(WorkItem& out) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;  // closed
    out = std::move(items_.front());
    items_.pop_front();
    busy_ = true;
    not_full_.notify_one();
    return true;
  }

  /// Marks the most recently popped item as fully processed.
  void Done() {
    std::lock_guard<std::mutex> lock(mu_);
    busy_ = false;
    if (items_.empty()) drained_.notify_all();
  }

  /// Blocks until every pushed item has been popped AND processed.
  void WaitDrained() {
    std::unique_lock<std::mutex> lock(mu_);
    drained_.wait(lock, [&] { return items_.empty() && !busy_; });
  }

  /// Wakes all waiters; subsequent pushes fail. The consumer drains what is
  /// already queued, then Pop returns false.
  void Close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

 private:
  const size_t max_pending_;
  std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::condition_variable drained_;
  std::deque<WorkItem> items_;
  bool closed_ = false;
  bool busy_ = false;
};

}  // namespace engine
}  // namespace ldpm

#endif  // LDPM_ENGINE_SHARD_QUEUE_H_
