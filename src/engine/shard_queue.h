// Bounded work queue feeding one shard worker of the sharded aggregation
// engine, with a lock-free single-producer fast path.
//
// Producers push batches of work and block when the queue is full
// (backpressure instead of unbounded memory growth under overload). The
// single consumer — the shard's worker thread — pops batches and marks each
// one done, which lets Flush() implement a precise drain barrier: the queue
// is drained only when no batch is queued AND the worker is not mid-batch.
//
// Two internal paths share the external contract:
//
//  * SPSC ring — the first thread to push registers as the ring producer
//    and from then on pushes through a fixed-capacity lock-free ring
//    buffer: no mutex, no condvar signalling in steady state (the producer
//    only takes the mutex to wake a consumer it observed going idle).
//  * MPSC mutex queue — any other producer thread (and the ring producer
//    when the ring is full) pushes through the original mutex+condvar
//    deque, which provides the blocking backpressure wait. Total pending
//    work is bounded by max_pending (deque) plus the ring capacity
//    (max_pending rounded down to a power of two), i.e. under twice the
//    configured bound.
//
// The consumer drains both; relative order between the two paths is
// unspecified, which is fine for the engine because absorbing batches
// commutes. All condition variables are notified AFTER the mutex is
// released, so a woken thread never immediately blocks on the lock the
// notifier still holds.

#ifndef LDPM_ENGINE_SHARD_QUEUE_H_
#define LDPM_ENGINE_SHARD_QUEUE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <thread>
#include <utility>
#include <vector>

#include "core/sync.h"
#include "protocols/protocol.h"

namespace ldpm {
namespace engine {

/// One unit of shard work: pre-encoded reports to absorb, a wire batch
/// frame to parse-and-absorb in place, or raw user rows to encode on the
/// worker with the shard's own Rng stream.
struct WorkItem {
  /// Reports to AbsorbBatch() verbatim (aggregator-side ingest).
  std::vector<Report> reports;
  /// A wire batch frame (protocols/wire.h) for AbsorbWireBatch().
  std::vector<uint8_t> wire;
  /// User rows to encode and absorb on the worker (client simulation).
  std::vector<uint64_t> rows;
  /// For `rows`: use the protocol's distribution-exact AbsorbPopulation
  /// fast path instead of the per-user Encode+Absorb loop.
  bool fast_path = false;
};

/// Bounded single-consumer work queue feeding one shard worker, with a
/// lock-free SPSC ring fast path and a blocking MPSC mutex fallback (see
/// the file comment for the full contract). Producers call Push; the one
/// consumer loops Pop/Done; control threads use WaitDrained/Close.
class ShardQueue {
 public:
  /// Creates a queue whose mutex path blocks producers beyond
  /// `max_pending` items; the SPSC ring adds up to max_pending more
  /// (rounded down to a power of two), so total buffering stays under
  /// twice the configured bound.
  explicit ShardQueue(size_t max_pending)
      : max_pending_(max_pending), ring_(RingCapacity(max_pending)) {}

  /// Enqueues one work item; blocks while the queue is at capacity.
  /// Returns false (dropping the item) if the queue has been closed.
  bool Push(WorkItem item) {
    if (IsRingProducer()) {
      const size_t tail = ring_tail_.load(std::memory_order_relaxed);
      if (tail - ring_head_.load(std::memory_order_acquire) < ring_.size()) {
        // Close() handshake: announce the in-flight push, THEN check
        // closed. Either this load sees the close and rejects before
        // committing, or Close() spins on the announcement until the
        // commit is visible — so a push that returned true is always
        // drained by the consumer, never stranded in the ring.
        ring_push_pending_.store(true, std::memory_order_seq_cst);
        if (closed_.load(std::memory_order_seq_cst)) {
          ring_push_pending_.store(false, std::memory_order_seq_cst);
          return false;
        }
        ring_[tail & (ring_.size() - 1)] = std::move(item);
        ring_tail_.store(tail + 1, std::memory_order_seq_cst);
        ring_push_pending_.store(false, std::memory_order_seq_cst);
        WakeIdleConsumer();
        return true;
      }
      // Ring full: fall through to the blocking mutex path for the
      // backpressure wait. (Total pending work is bounded by the deque's
      // max_pending plus the ring capacity.)
    }
    {
      core::MutexLock lock(mu_);
      while (!closed_.load(std::memory_order_relaxed) &&
             items_.size() >= max_pending_) {
        not_full_.Wait(mu_);
      }
      if (closed_.load(std::memory_order_relaxed)) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.NotifyOne();
    return true;
  }

  /// Dequeues the next item; blocks while the queue is empty. Returns false
  /// once the queue is closed and fully drained. The consumer must call
  /// Done() after finishing each popped item.
  bool Pop(WorkItem& out) {
    for (;;) {
      // Claim "mid-batch" BEFORE looking for work, so WaitDrained cannot
      // observe an item gone from the ring but not yet marked in flight.
      busy_.store(true, std::memory_order_seq_cst);
      if (PopRing(out)) return true;
      core::ReleasableMutexLock lock(mu_);
      if (!items_.empty()) {
        out = std::move(items_.front());
        items_.pop_front();
        // busy_ stays true until Done().
        lock.Release();
        not_full_.NotifyOne();
        return true;
      }
      busy_.store(false, std::memory_order_seq_cst);
      const bool notify_drained = RingEmpty();
      if (closed_.load(std::memory_order_relaxed) && RingEmpty()) {
        const bool push_in_flight =
            ring_push_pending_.load(std::memory_order_seq_cst);
        lock.Release();
        if (notify_drained) drained_.NotifyAll();
        if (push_in_flight) {
          // A ring push raced Close(): it read closed == false before the
          // close landed but has not committed yet. Spin one iteration —
          // either the item appears in the ring (and is drained) or the
          // push aborts and the pending flag clears.
          std::this_thread::yield();
          continue;
        }
        return false;
      }
      if (notify_drained) {
        // Notify with the mutex dropped (a waiter must not wake straight
        // into our lock); the wait loop below re-checks under lock, so
        // releasing it briefly is safe.
        lock.Release();
        drained_.NotifyAll();
        lock.Reacquire();
      }
      consumer_idle_.store(true, std::memory_order_seq_cst);
      while (!closed_.load(std::memory_order_relaxed) && items_.empty() &&
             RingEmpty()) {
        not_empty_.Wait(mu_);
      }
      consumer_idle_.store(false, std::memory_order_seq_cst);
    }
  }

  /// Marks the most recently popped item as fully processed.
  void Done() {
    bool notify = false;
    {
      core::MutexLock lock(mu_);
      busy_.store(false, std::memory_order_seq_cst);
      notify = items_.empty() && RingEmpty();
    }
    if (notify) drained_.NotifyAll();
  }

  /// Blocks until every pushed item has been popped AND processed.
  void WaitDrained() {
    core::MutexLock lock(mu_);
    while (!items_.empty() || !RingEmpty() ||
           busy_.load(std::memory_order_seq_cst)) {
      drained_.Wait(mu_);
    }
  }

  /// Wakes all waiters; subsequent pushes fail. The consumer drains what is
  /// already queued, then Pop returns false.
  void Close() {
    {
      core::MutexLock lock(mu_);
      closed_.store(true, std::memory_order_seq_cst);
    }
    // Wait out a ring push that read closed == false before the store
    // above: once the flag clears, its commit is visible, so the wakeups
    // below cannot let the consumer exit past a stranded item.
    while (ring_push_pending_.load(std::memory_order_seq_cst)) {
      std::this_thread::yield();
    }
    not_empty_.NotifyAll();
    not_full_.NotifyAll();
  }

 private:
  static size_t RingCapacity(size_t max_pending) {
    // Largest power of two <= max_pending for mask indexing (min 2), so
    // ring + deque together stay under twice the configured bound.
    size_t cap = 2;
    while (cap * 2 <= max_pending) cap <<= 1;
    return cap;
  }

  /// True when the calling thread owns the ring (registering itself when
  /// the ring is unowned). Only the owning producer touches ring_tail_.
  bool IsRingProducer() {
    const std::thread::id me = std::this_thread::get_id();
    std::thread::id owner = ring_producer_.load(std::memory_order_acquire);
    if (owner == me) return true;
    if (owner == std::thread::id{}) {
      std::thread::id expected{};
      if (ring_producer_.compare_exchange_strong(expected, me,
                                                 std::memory_order_acq_rel)) {
        return true;
      }
    }
    return false;
  }

  bool PopRing(WorkItem& out) {
    const size_t head = ring_head_.load(std::memory_order_relaxed);
    if (ring_tail_.load(std::memory_order_seq_cst) == head) return false;
    out = std::move(ring_[head & (ring_.size() - 1)]);
    ring_head_.store(head + 1, std::memory_order_release);
    return true;
  }

  bool RingEmpty() const {
    return ring_tail_.load(std::memory_order_seq_cst) ==
           ring_head_.load(std::memory_order_seq_cst);
  }

  /// After a lock-free ring push: if the consumer announced it may sleep,
  /// synchronize through the mutex so the wakeup cannot slip between the
  /// consumer's empty-check and its wait, then notify.
  void WakeIdleConsumer() {
    if (!consumer_idle_.load(std::memory_order_seq_cst)) return;
    { core::MutexLock lock(mu_); }
    not_empty_.NotifyOne();
  }

  const size_t max_pending_;

  // SPSC ring fast path.
  std::vector<WorkItem> ring_;
  std::atomic<size_t> ring_head_{0};  // written by the consumer only
  std::atomic<size_t> ring_tail_{0};  // written by the ring producer only
  std::atomic<std::thread::id> ring_producer_{};
  std::atomic<bool> consumer_idle_{false};
  std::atomic<bool> ring_push_pending_{false};  // Close() handshake

  // MPSC mutex path + shared control state. The atomics below are
  // deliberately unguarded: closed_/busy_ are read on lock-free paths and
  // their cross-path handshakes are documented inline above.
  core::Mutex mu_;
  core::CondVar not_full_;
  core::CondVar not_empty_;
  core::CondVar drained_;
  std::deque<WorkItem> items_ LDPM_GUARDED_BY(mu_);
  std::atomic<bool> closed_{false};
  std::atomic<bool> busy_{false};
};

}  // namespace engine
}  // namespace ldpm

#endif  // LDPM_ENGINE_SHARD_QUEUE_H_
