// Engine-wide backpressure budget shared by several ShardedAggregators.
//
// Each per-shard queue already bounds its own backlog, but a Collector
// hosting many collections needs one global bound so a burst on N streams
// cannot hold N * S * max_pending batches in memory. An IngestBudget is a
// counting gate on in-flight work items: every enqueue path acquires a
// slot (blocking while the budget is exhausted) and the shard worker
// releases it after the item is absorbed. Collections sharing a budget
// therefore share one engine-wide memory bound, independent of how many
// streams are registered.

#ifndef LDPM_ENGINE_INGEST_BUDGET_H_
#define LDPM_ENGINE_INGEST_BUDGET_H_

#include <chrono>
#include <cstddef>

#include "core/sync.h"

namespace ldpm {
namespace engine {

/// Counting gate on in-flight work items across engines (see file
/// comment). Thread-safe; slots are not tied to the acquiring thread.
///
/// Producers that must stay responsive while the budget is exhausted — a
/// network reader thread that has to notice a server shutdown, an accept
/// loop that sheds load instead of queueing it — use TryAcquire or
/// AcquireFor and re-check their own stop conditions between attempts;
/// only producers that may block indefinitely call Acquire.
class IngestBudget {
 public:
  explicit IngestBudget(size_t max_in_flight) : limit_(max_in_flight) {}

  IngestBudget(const IngestBudget&) = delete;
  IngestBudget& operator=(const IngestBudget&) = delete;

  /// Blocks until a slot is free, then takes it.
  void Acquire() LDPM_EXCLUDES(mu_) {
    core::MutexLock lock(mu_);
    while (in_flight_ >= limit_) cv_.Wait(mu_);
    ++in_flight_;
  }

  /// Takes a slot if one is free right now; never blocks.
  bool TryAcquire() LDPM_EXCLUDES(mu_) {
    core::MutexLock lock(mu_);
    if (in_flight_ >= limit_) return false;
    ++in_flight_;
    return true;
  }

  /// Waits up to `timeout` for a slot; true when one was taken. A zero or
  /// negative timeout degenerates to TryAcquire.
  bool AcquireFor(std::chrono::nanoseconds timeout) LDPM_EXCLUDES(mu_) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    core::MutexLock lock(mu_);
    while (in_flight_ >= limit_) {
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) return false;
      cv_.WaitFor(mu_, deadline - now);
    }
    ++in_flight_;
    return true;
  }

  /// Returns a slot taken by Acquire. Notified after the lock is released
  /// so a woken producer never immediately blocks on the notifier's mutex.
  void Release() LDPM_EXCLUDES(mu_) {
    {
      core::MutexLock lock(mu_);
      --in_flight_;
    }
    cv_.NotifyOne();
  }

  /// Work items currently holding a slot (enqueued or being absorbed).
  size_t in_flight() const LDPM_EXCLUDES(mu_) {
    core::MutexLock lock(mu_);
    return in_flight_;
  }

  size_t limit() const { return limit_; }

 private:
  const size_t limit_;
  mutable core::Mutex mu_;
  core::CondVar cv_;
  size_t in_flight_ LDPM_GUARDED_BY(mu_) = 0;
};

}  // namespace engine
}  // namespace ldpm

#endif  // LDPM_ENGINE_INGEST_BUDGET_H_
