// Throughput accounting for the sharded aggregation engine.
//
// Since the obs/ metrics layer landed, this struct is a *view*: the batch
// count reads the engine's monotonic registry counter (minus the window
// baseline recorded at Reset), and reports/bits read the shard protocols —
// the same sources the ldpm_engine_* series on /stats are fed from, so the
// two can never disagree. Stats() remains the resettable, windowed,
// rate-bearing convenience; the registry remains the monotonic scrape
// surface.

#ifndef LDPM_ENGINE_INGEST_STATS_H_
#define LDPM_ENGINE_INGEST_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace ldpm {
namespace engine {

/// A point-in-time throughput report for one ShardedAggregator. The window
/// opens at the first ingest after construction (or Reset) and closes when
/// the stats are taken; rates are averaged over that window.
struct IngestStats {
  /// Reports absorbed across all shards.
  uint64_t reports = 0;
  /// Work batches enqueued onto shard queues since construction/Reset
  /// (report batches, wire batch frames, and row chunks all count as one).
  uint64_t batches = 0;
  /// Total measured communication absorbed, in bits (per the paper's
  /// Table 2 accounting).
  double bits = 0.0;
  /// Length of the ingest window in seconds (0 if nothing was ingested).
  double wall_seconds = 0.0;
  /// Average ingest rates over the window (0 if the window is empty).
  double reports_per_second = 0.0;
  double bits_per_second = 0.0;
  /// Reports absorbed by each shard, in shard order.
  std::vector<uint64_t> per_shard_reports;

  /// One-line human-readable rendering, e.g.
  /// "1200000 reports in 0.52s (2.31e+06 reports/s, 2.08e+07 bits/s), shards [...]".
  std::string ToString() const;
};

}  // namespace engine
}  // namespace ldpm

#endif  // LDPM_ENGINE_INGEST_STATS_H_
